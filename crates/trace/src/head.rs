//! Synthetic head-movement (gaze) traces.
//!
//! The generator reproduces the statistical structure the paper's pipeline
//! consumes from the MMSys'17 dataset:
//!
//! * **Hotspots** — each video has a few salient regions whose positions
//!   slowly oscillate (the action moves around the scene).
//! * **Fixation** — a user dwells on a hotspot with small
//!   Ornstein–Uhlenbeck gaze jitter, offset by a per-user interest bias
//!   (small for focused videos, large for exploratory ones).
//! * **Pursuit** — on dwell expiry the user swings to the next hotspot
//!   along the great circle at the video's pursuit speed: these swings are
//!   the >10°/s tail of Fig. 5.
//! * **Exploration** — users of exploratory videos occasionally wander to
//!   a uniformly random point, producing the scattered, Ptile-uncovered
//!   viewers of Fig. 7(b).
//!
//! Hotspot choice is shared across users for focused videos (everyone
//! watches the ball) and Zipf-skewed but individual for exploratory videos
//! (most users follow the main action, a minority roams), which is what
//! gives Algorithm 1 its one-or-two dominant clusters.

use std::error::Error;
use std::fmt;

use ee360_support::rng::StdRng;

use ee360_geom::angles::{lerp_yaw_deg, wrap_yaw_deg};
use ee360_geom::sphere::Orientation;
use ee360_geom::switching::{mean_switching_speed, SwitchingSample};
use ee360_geom::viewport::ViewCenter;
use ee360_video::catalog::{BehaviorProfile, VideoSpec};

/// Tuning knobs of the gaze simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GazeConfig {
    /// Gaze sampling rate in Hz (the paper's headsets record at 50 Hz; 10 Hz
    /// is plenty for 1 s segments and keeps experiments fast).
    pub sample_hz: f64,
    /// Standard deviation of fixation jitter, degrees.
    pub jitter_deg: f64,
    /// Per-user interest offset (1σ), degrees, for focused videos.
    pub focused_offset_deg: f64,
    /// Per-user interest offset (1σ), degrees, for exploratory videos.
    pub exploratory_offset_deg: f64,
    /// Probability that an exploratory user's next target is a random
    /// point rather than a hotspot.
    pub roam_probability: f64,
    /// Zipf skew for exploratory hotspot choice.
    pub zipf_exponent: f64,
    /// Rate of saccadic micro-flicks while fixating, per second. Flicks are
    /// brief 3–7° re-fixations: they dominate the fast tail of the
    /// switching-speed distribution (Fig. 5) without moving the user out of
    /// the Ptile.
    pub flick_rate_hz: f64,
}

ee360_support::impl_json_struct!(GazeConfig {
    sample_hz,
    jitter_deg,
    focused_offset_deg,
    exploratory_offset_deg,
    roam_probability,
    zipf_exponent,
    flick_rate_hz
});

impl Default for GazeConfig {
    fn default() -> Self {
        Self {
            sample_hz: 10.0,
            jitter_deg: 1.2,
            focused_offset_deg: 6.0,
            exploratory_offset_deg: 10.0,
            roam_probability: 0.06,
            zipf_exponent: 1.1,
            flick_rate_hz: 1.2,
        }
    }
}

/// One user's gaze trace over one video.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadTrace {
    video_id: usize,
    user_id: usize,
    sample_hz: f64,
    /// (t_sec, yaw_deg, pitch_deg) triples, strictly increasing in time.
    samples: Vec<(f64, f64, f64)>,
}

ee360_support::impl_json_struct!(HeadTrace {
    video_id,
    user_id,
    sample_hz,
    samples
});

/// A malformed raw head trace (the import path external datasets use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadTraceError {
    /// The sample list was empty.
    EmptyTrace,
    /// A timestamp failed to increase over its predecessor.
    NonIncreasingTime {
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for HeadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTraceError::EmptyTrace => write!(f, "a trace needs at least one sample"),
            HeadTraceError::NonIncreasingTime { index } => write!(
                f,
                "sample times must be strictly increasing (sample {index} does not advance)"
            ),
        }
    }
}

impl Error for HeadTraceError {}

impl HeadTrace {
    /// Builds a trace from raw `(t_sec, yaw_deg, pitch_deg)` samples — the
    /// entry point for external datasets (see [`crate::mmsys`]).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or timestamps are not strictly
    /// increasing — the infallible wrapper around
    /// [`HeadTrace::try_from_samples`].
    pub fn from_samples(video_id: usize, user_id: usize, samples: Vec<(f64, f64, f64)>) -> Self {
        match Self::try_from_samples(video_id, user_id, samples) {
            Ok(trace) => trace,
            // lint:allow(no-panic-paths, "documented panic: infallible wrapper; try_from_samples is the graceful API")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`HeadTrace::from_samples`]: empty input and
    /// out-of-order timestamps come back as [`HeadTraceError`]s instead
    /// of panicking — the path external datasets arrive through.
    pub fn try_from_samples(
        video_id: usize,
        user_id: usize,
        samples: Vec<(f64, f64, f64)>,
    ) -> Result<Self, HeadTraceError> {
        if samples.is_empty() {
            return Err(HeadTraceError::EmptyTrace);
        }
        if let Some(index) = samples.windows(2).position(|w| w[1].0 <= w[0].0) {
            return Err(HeadTraceError::NonIncreasingTime { index: index + 1 });
        }
        let sample_hz = match (samples.first(), samples.last()) {
            (Some(first), Some(last)) if samples.len() >= 2 => {
                let span = last.0 - first.0;
                (samples.len() as f64 - 1.0) / span.max(1e-9)
            }
            _ => 1.0,
        };
        Ok(Self {
            video_id,
            user_id,
            sample_hz,
            samples,
        })
    }

    /// The video this trace was recorded over.
    pub fn video_id(&self) -> usize {
        self.video_id
    }

    /// The user id within the video's population.
    pub fn user_id(&self) -> usize {
        self.user_id
    }

    /// Trace duration in seconds.
    pub fn duration_sec(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.0)
    }

    /// Number of gaze samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples as [`SwitchingSample`]s.
    pub fn switching_samples(&self) -> Vec<SwitchingSample> {
        self.samples
            .iter()
            .map(|&(t, y, p)| SwitchingSample::new(t, ViewCenter::new(y, p)))
            .collect()
    }

    /// The gaze position at the start of segment `k` (the sample closest to
    /// `t = k` seconds), or `None` past the end of the trace.
    pub fn segment_center(&self, segment: usize) -> Option<ViewCenter> {
        let t = segment as f64;
        if t > self.duration_sec() + 1e-9 {
            return None;
        }
        let idx = self
            .samples
            .partition_point(|s| s.0 < t - 1e-9)
            .min(self.samples.len() - 1);
        let (_, y, p) = self.samples[idx];
        Some(ViewCenter::new(y, p))
    }

    /// Mean view-switching speed within segment `k`, degrees per second
    /// (the `S_fov` input of Eq. 4). `None` past the end of the trace.
    pub fn segment_switching_speed(&self, segment: usize) -> Option<f64> {
        let t0 = segment as f64;
        if t0 > self.duration_sec() {
            return None;
        }
        Some(mean_switching_speed(&self.segment_window(t0)))
    }

    /// The samples inside `[t0 - 1e-9, t0 + 1 + 1e-9]` as switching
    /// samples. Timestamps are strictly increasing (enforced by
    /// `try_from_samples`), so the window is a contiguous run found by two
    /// binary searches rather than a full-trace scan.
    fn segment_window(&self, t0: f64) -> Vec<SwitchingSample> {
        let t1 = t0 + 1.0;
        let lo = self.samples.partition_point(|s| s.0 < t0 - 1e-9);
        let hi = self.samples.partition_point(|s| s.0 <= t1 + 1e-9);
        self.samples[lo..hi]
            .iter()
            .map(|&(t, y, p)| SwitchingSample::new(t, ViewCenter::new(y, p)))
            .collect()
    }

    /// Per-interval switching speeds over the whole trace (Fig. 5's raw
    /// material), degrees per second.
    pub fn switching_speeds(&self) -> Vec<f64> {
        ee360_geom::switching::switching_speeds(&self.switching_samples())
    }

    /// The *fast* switching speed within segment `k`: the 75th percentile
    /// of the within-segment speeds. Eq. 4's blur argument is about the
    /// fast phases of the gaze ("during fast view switching"), which a
    /// plain mean dilutes away. `None` past the end of the trace.
    pub fn segment_fast_switching_speed(&self, segment: usize) -> Option<f64> {
        let t0 = segment as f64;
        if t0 > self.duration_sec() {
            return None;
        }
        let window = self.segment_window(t0);
        let mut speeds = ee360_geom::switching::switching_speeds(&window);
        if speeds.is_empty() {
            return Some(0.0);
        }
        let idx = ((speeds.len() as f64) * 0.75).floor() as usize;
        let idx = idx.min(speeds.len() - 1);
        // Selection instead of a full sort: under `total_cmp`'s total
        // order the idx-th order statistic is the value a sort would
        // index.
        let (_, kth, _) = speeds.select_nth_unstable_by(idx, |a, b| a.total_cmp(b));
        Some(*kth)
    }
}

/// A salient region whose position oscillates over time.
#[derive(Debug, Clone, Copy)]
struct Hotspot {
    yaw0: f64,
    pitch0: f64,
    yaw_amp: f64,
    yaw_period: f64,
    phase: f64,
}

impl Hotspot {
    fn position(&self, t: f64) -> ViewCenter {
        let yaw = self.yaw0
            + self.yaw_amp * (2.0 * std::f64::consts::PI * t / self.yaw_period + self.phase).sin();
        ViewCenter::new(wrap_yaw_deg(yaw), self.pitch0)
    }
}

/// What the simulated user is currently doing.
enum GazeState {
    /// Dwelling on a target until the given time.
    Fixate { target: Target, until: f64 },
    /// Swinging towards a target at a given speed (deg/s).
    Travel { target: Target, speed: f64 },
}

/// Where the gaze is headed.
#[derive(Clone, Copy)]
enum Target {
    Hotspot { index: usize, offset: (f64, f64) },
    Point(ViewCenter),
}

/// Generates [`HeadTrace`]s for a video's user population.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadTraceGenerator {
    config: GazeConfig,
}

impl HeadTraceGenerator {
    /// Creates a generator.
    pub fn new(config: GazeConfig) -> Self {
        assert!(config.sample_hz > 0.0, "sample rate must be positive");
        Self { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GazeConfig {
        &self.config
    }

    /// Deterministic hotspot layout for a video.
    fn hotspots(spec: &VideoSpec, rng: &mut StdRng) -> Vec<Hotspot> {
        let n = spec.hotspot_count.max(1);
        (0..n)
            .map(|i| Hotspot {
                // Salient action clusters in the front hemisphere of real
                // 360° footage; spreading hotspots over the whole sphere
                // would make users spend most of their time in transit.
                yaw0: if n == 1 {
                    rng.gen_range(-30.0..30.0)
                } else {
                    -80.0 + 160.0 * i as f64 / (n as f64 - 1.0) + rng.gen_range(-15.0..15.0)
                },
                pitch0: rng.gen_range(-18.0..18.0),
                yaw_amp: rng.gen_range(8.0..30.0),
                yaw_period: rng.gen_range(25.0..70.0),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect()
    }

    /// The hotspot all focused users attend to at time `t` (attention
    /// rotates every few dwell periods, shared across the population).
    fn focused_active_hotspot(spec: &VideoSpec, t: f64) -> usize {
        let period = (5.0 * spec.mean_dwell_sec).max(8.0);
        ((t / period) as usize) % spec.hotspot_count.max(1)
    }

    /// Zipf-skewed hotspot choice for exploratory users.
    fn zipf_hotspot(&self, n: usize, rng: &mut StdRng) -> usize {
        let weights: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.config.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        n - 1
    }

    /// Generates one user's trace. Deterministic in `(spec.id, user_id,
    /// seed)`.
    pub fn generate(&self, spec: &VideoSpec, user_id: usize, seed: u64) -> HeadTrace {
        let mut mix = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((spec.id as u64) << 32)
            .wrapping_add(user_id as u64);
        mix = (mix ^ (mix >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        let mut rng = StdRng::seed_from_u64(mix);
        // The hotspot layout must be shared by all users of a video, so it
        // uses its own RNG keyed by (video, seed) only.
        let mut video_rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x2545F4914F6CDD1D)
                .wrapping_add(spec.id as u64),
        );
        let hotspots = Self::hotspots(spec, &mut video_rng);

        let exploratory = spec.behavior == BehaviorProfile::Exploratory;
        let offset_sigma = if exploratory {
            self.config.exploratory_offset_deg
        } else {
            self.config.focused_offset_deg
        };
        let user_offset = (
            rng.gen_range(-1.5..1.5) * offset_sigma,
            rng.gen_range(-1.0..1.0) * offset_sigma * 0.7,
        );

        // Focused users react to the same on-screen events within a short
        // personal delay, which keeps the pack together during transits.
        let reaction_delay = rng.gen_range(0.0..0.8);

        let dt = 1.0 / self.config.sample_hz;
        let steps = (spec.duration_sec as f64 * self.config.sample_hz) as usize;

        // Initial target.
        let initial_idx = if exploratory {
            self.zipf_hotspot(hotspots.len(), &mut rng)
        } else {
            Self::focused_active_hotspot(spec, 0.0)
        };
        let mut state = GazeState::Fixate {
            target: Target::Hotspot {
                index: initial_idx,
                offset: user_offset,
            },
            until: self.sample_dwell(spec, &mut rng),
        };
        let start = Self::target_position(&hotspots, &state_target(&state), 0.0);
        let mut pos = start;
        let mut jitter = (0.0f64, 0.0f64);
        let mut flick = (0.0f64, 0.0f64);
        let mut samples = Vec::with_capacity(steps + 1);

        for step in 0..=steps {
            let t = step as f64 * dt;
            // Ornstein–Uhlenbeck jitter around the nominal gaze point.
            let theta = 1.2 * dt;
            jitter.0 +=
                -theta * jitter.0 + self.config.jitter_deg * dt.sqrt() * rng.gen_range(-1.0..1.0);
            jitter.1 +=
                -theta * jitter.1 + self.config.jitter_deg * dt.sqrt() * rng.gen_range(-1.0..1.0);

            match &mut state {
                GazeState::Fixate { target, until } => {
                    let nominal = Self::target_position(&hotspots, target, t);
                    // Track the (slowly moving) hotspot.
                    pos = ViewCenter::new(
                        lerp_yaw_deg(pos.yaw_deg(), nominal.yaw_deg(), (3.0 * dt).min(1.0)),
                        pos.pitch_deg()
                            + (nominal.pitch_deg() - pos.pitch_deg()) * (3.0 * dt).min(1.0),
                    );
                    // Focused viewers switch when the on-screen action
                    // switches (synchronised across the population), not on
                    // a private schedule.
                    let stimulus_switch = !exploratory
                        && matches!(target, Target::Hotspot { index, .. }
                        if *index != Self::focused_active_hotspot(
                            spec,
                            (t - reaction_delay).max(0.0),
                        ));
                    if stimulus_switch || t >= *until {
                        let current = match target {
                            Target::Hotspot { index, .. } => Some(*index),
                            Target::Point(_) => None,
                        };
                        let next = self.pick_next_target(
                            spec,
                            exploratory,
                            user_offset,
                            t,
                            &hotspots,
                            current,
                            &mut rng,
                        );
                        let next_pos = Self::target_position(&hotspots, &next, t);
                        let dist = Orientation::from_view_center(pos)
                            .angle_to_deg(&Orientation::from_view_center(next_pos));
                        if dist > 5.0 {
                            let spread = if exploratory { 0.8..1.3 } else { 0.9..1.15 };
                            let speed = spec.pursuit_speed_deg_s * rng.gen_range(spread);
                            state = GazeState::Travel {
                                target: next,
                                speed,
                            };
                        } else {
                            state = GazeState::Fixate {
                                target: next,
                                until: t + self.sample_dwell(spec, &mut rng),
                            };
                        }
                    }
                }
                GazeState::Travel { target, speed } => {
                    let goal = Self::target_position(&hotspots, target, t);
                    let here = Orientation::from_view_center(pos);
                    let there = Orientation::from_view_center(goal);
                    let remaining = here.angle_to_deg(&there);
                    let step_deg = *speed * dt;
                    if remaining <= step_deg || remaining < 3.0 {
                        pos = goal;
                        state = GazeState::Fixate {
                            target: *target,
                            until: t + self.sample_dwell(spec, &mut rng),
                        };
                    } else {
                        pos = here.slerp(&there, step_deg / remaining).to_view_center();
                    }
                }
            }

            // Saccadic micro-flicks: a sudden small re-fixation that decays
            // over a few samples — fast by Eq. 5, but spatially tiny.
            if rng.gen_range(0.0..1.0) < self.config.flick_rate_hz * dt {
                let magnitude = rng.gen_range(4.0..8.0);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                flick.0 += magnitude * angle.cos();
                flick.1 += magnitude * 0.6 * angle.sin();
            }
            flick.0 *= 0.45;
            flick.1 *= 0.45;

            let observed = ViewCenter::new(
                pos.yaw_deg() + jitter.0 + flick.0,
                pos.pitch_deg() + jitter.1 + flick.1,
            );
            samples.push((t, observed.yaw_deg(), observed.pitch_deg()));
        }

        HeadTrace {
            video_id: spec.id,
            user_id,
            sample_hz: self.config.sample_hz,
            samples,
        }
    }

    fn sample_dwell(&self, spec: &VideoSpec, rng: &mut StdRng) -> f64 {
        // Exponential dwell with the video's mean, floored at 0.8 s.
        let u: f64 = rng.gen_range(1e-9..1.0);
        (-u.ln() * spec.mean_dwell_sec).max(0.8)
    }

    #[allow(clippy::too_many_arguments)]
    fn pick_next_target(
        &self,
        spec: &VideoSpec,
        exploratory: bool,
        user_offset: (f64, f64),
        t: f64,
        hotspots: &[Hotspot],
        current_hotspot: Option<usize>,
        rng: &mut StdRng,
    ) -> Target {
        if exploratory {
            let r = rng.gen_range(0.0..1.0);
            if r < self.config.roam_probability {
                return Target::Point(ViewCenter::new(
                    rng.gen_range(-180.0..180.0),
                    rng.gen_range(-40.0..40.0),
                ));
            }
            // Most "exploration" is local: re-framing around the current
            // action rather than beelining across the sphere.
            if r < self.config.roam_probability + 0.45 {
                if let Some(index) = current_hotspot {
                    return Target::Hotspot {
                        index,
                        offset: (
                            user_offset.0 + rng.gen_range(-8.0..8.0),
                            user_offset.1 + rng.gen_range(-5.0..5.0),
                        ),
                    };
                }
            }
            Target::Hotspot {
                index: self.zipf_hotspot(hotspots.len(), rng),
                offset: user_offset,
            }
        } else {
            Target::Hotspot {
                index: Self::focused_active_hotspot(spec, t),
                offset: user_offset,
            }
        }
    }

    fn target_position(hotspots: &[Hotspot], target: &Target, t: f64) -> ViewCenter {
        match target {
            Target::Hotspot { index, offset } => {
                let h = hotspots[*index].position(t);
                ViewCenter::new(h.yaw_deg() + offset.0, h.pitch_deg() + offset.1)
            }
            Target::Point(p) => *p,
        }
    }
}

fn state_target(state: &GazeState) -> Target {
    match state {
        GazeState::Fixate { target, .. } => *target,
        GazeState::Travel { target, .. } => *target,
    }
}

impl Default for HeadTraceGenerator {
    fn default() -> Self {
        Self::new(GazeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_video::catalog::VideoCatalog;

    fn generator() -> HeadTraceGenerator {
        HeadTraceGenerator::default()
    }

    fn video(id: usize) -> VideoSpec {
        VideoCatalog::paper_default().video(id).unwrap().clone()
    }

    #[test]
    fn trace_covers_video_duration() {
        let spec = video(6); // 164 s
        let trace = generator().generate(&spec, 0, 1);
        assert!((trace.duration_sec() - 164.0).abs() < 0.2);
        assert_eq!(trace.len(), 164 * 10 + 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = video(2);
        let a = generator().generate(&spec, 3, 99);
        let b = generator().generate(&spec, 3, 99);
        assert_eq!(a, b);
        let c = generator().generate(&spec, 3, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn different_users_differ() {
        let spec = video(2);
        let a = generator().generate(&spec, 0, 7);
        let b = generator().generate(&spec, 1, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn segment_centers_available_for_all_segments() {
        let spec = video(8); // 201 s
        let trace = generator().generate(&spec, 0, 5);
        for k in 0..spec.segment_count() {
            assert!(trace.segment_center(k).is_some(), "segment {k}");
        }
        assert!(trace.segment_center(10_000).is_none());
    }

    #[test]
    fn segment_switching_speed_reasonable() {
        let spec = video(8);
        let trace = generator().generate(&spec, 1, 5);
        for k in 0..spec.segment_count() {
            let s = trace.segment_switching_speed(k).unwrap();
            assert!((0.0..=200.0).contains(&s), "segment {k}: {s}");
        }
    }

    #[test]
    fn focused_users_cluster_together() {
        // Two focused-video users should usually gaze at the same hotspot.
        let spec = video(2); // boxing: 1 hotspot
        let gen = generator();
        let a = gen.generate(&spec, 0, 11);
        let b = gen.generate(&spec, 1, 11);
        let mut close = 0;
        let mut total = 0;
        for k in 0..spec.segment_count() {
            let ca = a.segment_center(k).unwrap();
            let cb = b.segment_center(k).unwrap();
            if ca.distance_deg(&cb) < 45.0 {
                close += 1;
            }
            total += 1;
        }
        assert!(
            close as f64 / total as f64 > 0.7,
            "only {close}/{total} segments close"
        );
    }

    #[test]
    fn exploratory_users_spread_wider_than_focused() {
        let gen = generator();
        let spread = |id: usize| {
            let spec = video(id);
            let traces: Vec<HeadTrace> = (0..6).map(|u| gen.generate(&spec, u, 13)).collect();
            let mut total = 0.0;
            let mut count = 0;
            for k in (0..spec.segment_count().min(120)).step_by(5) {
                for i in 0..traces.len() {
                    for j in (i + 1)..traces.len() {
                        let a = traces[i].segment_center(k).unwrap();
                        let b = traces[j].segment_center(k).unwrap();
                        total += a.distance_deg(&b);
                        count += 1;
                    }
                }
            }
            total / count as f64
        };
        let focused = spread(4);
        let exploratory = spread(7);
        assert!(
            exploratory > focused,
            "exploratory {exploratory} <= focused {focused}"
        );
    }

    #[test]
    fn fig5_switching_speed_distribution() {
        // The paper (Fig. 5): users exceed 10°/s for more than 30% of the
        // time. Accept a generous band around that.
        let gen = generator();
        let catalog = VideoCatalog::paper_default();
        let mut speeds = Vec::new();
        for v in catalog.videos() {
            for u in 0..4 {
                let trace = gen.generate(v, u, 21);
                speeds.extend(trace.switching_speeds());
            }
        }
        let above = speeds.iter().filter(|s| **s > 10.0).count() as f64 / speeds.len() as f64;
        assert!(
            (0.18..=0.55).contains(&above),
            "fraction above 10°/s = {above}"
        );
    }

    #[test]
    fn pitch_stays_physical() {
        let spec = video(5);
        let trace = generator().generate(&spec, 2, 3);
        for s in trace.switching_samples() {
            assert!(s.center.pitch_deg().abs() <= 90.0);
        }
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        let cfg = GazeConfig {
            sample_hz: 0.0,
            ..GazeConfig::default()
        };
        let _ = HeadTraceGenerator::new(cfg);
    }
}
