//! Descriptive statistics of gaze traces.
//!
//! The paper motivates its design with three behavioural observations:
//! users switch views fast enough to tolerate frame drops (Fig. 5), users
//! of the same video agree on where to look (Fig. 1/7), and focused videos
//! concentrate attention more than exploratory ones (Section V-B). This
//! module quantifies all three for any set of [`HeadTrace`]s, so the
//! synthetic substrate can be audited against the claims it must uphold.

use ee360_geom::viewport::ViewCenter;

use crate::head::HeadTrace;

/// Summary of one population's gaze behaviour over one video.
#[derive(Debug, Clone, PartialEq)]
pub struct GazeStats {
    /// Number of users analysed.
    pub users: usize,
    /// Median switching speed, degrees per second.
    pub median_speed_deg_s: f64,
    /// 90th-percentile switching speed, degrees per second.
    pub p90_speed_deg_s: f64,
    /// Fraction of samples faster than 10°/s (the Fig. 5 headline).
    pub fraction_above_10: f64,
    /// Mean pairwise distance between users' viewing centers at the same
    /// segment, degrees (inter-user agreement; small = focused).
    pub mean_pairwise_distance_deg: f64,
    /// Fraction of segment observations within 45° (one tile) of the
    /// population's per-segment spherical median.
    pub concentration_within_tile: f64,
}

ee360_support::impl_json_struct!(GazeStats {
    users,
    median_speed_deg_s,
    p90_speed_deg_s,
    fraction_above_10,
    mean_pairwise_distance_deg,
    concentration_within_tile
});

/// Computes [`GazeStats`] over a set of traces of the same video.
///
/// # Panics
///
/// Panics if `traces` is empty or the traces belong to different videos.
pub fn gaze_stats(traces: &[&HeadTrace]) -> GazeStats {
    assert!(!traces.is_empty(), "need at least one trace");
    let video = traces[0].video_id();
    assert!(
        traces.iter().all(|t| t.video_id() == video),
        "all traces must belong to the same video"
    );

    // Speed distribution.
    let mut speeds: Vec<f64> = traces.iter().flat_map(|t| t.switching_speeds()).collect();
    speeds.sort_by(|a, b| a.total_cmp(b));
    let quantile = |q: f64| {
        let idx = ((speeds.len() as f64 - 1.0) * q).round() as usize;
        speeds[idx.min(speeds.len() - 1)]
    };
    let above10 = speeds.iter().filter(|s| **s > 10.0).count() as f64 / speeds.len() as f64;

    // Inter-user agreement per segment.
    let segments = traces
        .iter()
        .map(|t| t.duration_sec() as usize)
        .min()
        .unwrap_or(0);
    let mut pair_sum = 0.0;
    let mut pair_count = 0usize;
    let mut concentrated = 0usize;
    let mut observations = 0usize;
    for k in (0..segments).step_by(2) {
        let centers: Vec<ViewCenter> = traces.iter().filter_map(|t| t.segment_center(k)).collect();
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                pair_sum += centers[i].distance_deg(&centers[j]);
                pair_count += 1;
            }
        }
        if let Some(median) = geometric_median(&centers) {
            for c in &centers {
                observations += 1;
                if c.distance_deg(&median) <= 45.0 {
                    concentrated += 1;
                }
            }
        }
    }

    GazeStats {
        users: traces.len(),
        median_speed_deg_s: quantile(0.5),
        p90_speed_deg_s: quantile(0.9),
        fraction_above_10: above10,
        mean_pairwise_distance_deg: if pair_count > 0 {
            pair_sum / pair_count as f64
        } else {
            0.0
        },
        concentration_within_tile: if observations > 0 {
            concentrated as f64 / observations as f64
        } else {
            0.0
        },
    }
}

/// A robust central point of a set of viewing centers: the member that
/// minimises the summed distance to the others (the medoid — exact and
/// wraparound-safe for the small populations we analyse).
pub fn geometric_median(centers: &[ViewCenter]) -> Option<ViewCenter> {
    if centers.is_empty() {
        return None;
    }
    centers
        .iter()
        .min_by(|a, b| {
            let cost = |p: &ViewCenter| centers.iter().map(|q| p.distance_deg(q)).sum::<f64>();
            cost(a).total_cmp(&cost(b))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::{GazeConfig, HeadTraceGenerator};
    use ee360_video::catalog::VideoCatalog;

    fn traces(video: usize, users: usize) -> Vec<HeadTrace> {
        let catalog = VideoCatalog::paper_default();
        let spec = catalog.video(video).unwrap();
        let generator = HeadTraceGenerator::new(GazeConfig::default());
        (0..users)
            .map(|u| generator.generate(spec, u, 77))
            .collect()
    }

    #[test]
    fn focused_more_concentrated_than_exploratory() {
        let focused: Vec<HeadTrace> = traces(2, 8);
        let exploratory: Vec<HeadTrace> = traces(8, 8);
        let f = gaze_stats(&focused.iter().collect::<Vec<_>>());
        let e = gaze_stats(&exploratory.iter().collect::<Vec<_>>());
        assert!(
            f.concentration_within_tile > e.concentration_within_tile,
            "focused {} vs exploratory {}",
            f.concentration_within_tile,
            e.concentration_within_tile
        );
        assert!(f.mean_pairwise_distance_deg < e.mean_pairwise_distance_deg);
    }

    #[test]
    fn speed_quantiles_ordered() {
        let ts = traces(6, 6);
        let s = gaze_stats(&ts.iter().collect::<Vec<_>>());
        assert!(s.median_speed_deg_s <= s.p90_speed_deg_s);
        assert!((0.0..=1.0).contains(&s.fraction_above_10));
        assert_eq!(s.users, 6);
    }

    #[test]
    fn geometric_median_of_cluster_is_inside() {
        let centers: Vec<ViewCenter> = (0..9)
            .map(|i| ViewCenter::new(10.0 + i as f64, 5.0))
            .collect();
        let m = geometric_median(&centers).unwrap();
        assert!(m.yaw_deg() >= 10.0 && m.yaw_deg() <= 18.0);
    }

    #[test]
    fn geometric_median_handles_wraparound() {
        let centers = vec![
            ViewCenter::new(176.0, 0.0),
            ViewCenter::new(178.0, 0.0),
            ViewCenter::new(-178.0, 0.0),
        ];
        let m = geometric_median(&centers).unwrap();
        // The medoid is one of the inputs, near the seam — not yaw 0.
        assert!(ee360_geom::angles::angular_diff_deg(m.yaw_deg(), 178.0) <= 4.0);
    }

    #[test]
    fn empty_median_is_none() {
        assert!(geometric_median(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "same video")]
    fn mixed_videos_panic() {
        let a = traces(1, 1);
        let b = traces(2, 1);
        let mixed: Vec<&HeadTrace> = vec![&a[0], &b[0]];
        let _ = gaze_stats(&mixed);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_panic() {
        let _ = gaze_stats(&[]);
    }
}
