//! Persistence for traces and datasets.
//!
//! The synthetic dataset plays the role of the MMSys'17 capture, so it
//! should be storable and reloadable like one: generate once, archive the
//! JSON, and rerun experiments against the exact same bits.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use ee360_support::json::{FromJson, ToJson};

use crate::dataset::Dataset;
use crate::head::HeadTrace;
use crate::network::NetworkTrace;

/// Error returned by the persistence helpers.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file contents were not valid JSON for the expected type.
    Format(ee360_support::json::JsonError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceIoError::Format(e) => write!(f, "trace file is not valid: {e}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<ee360_support::json::JsonError> for TraceIoError {
    fn from(e: ee360_support::json::JsonError) -> Self {
        TraceIoError::Format(e)
    }
}

fn save_json<T: ToJson>(value: &T, path: &Path) -> Result<(), TraceIoError> {
    let json = ee360_support::json::to_string(value)?;
    fs::write(path, json)?;
    Ok(())
}

fn load_json<T: FromJson>(path: &Path) -> Result<T, TraceIoError> {
    let json = fs::read_to_string(path)?;
    Ok(ee360_support::json::from_str(&json)?)
}

/// Saves a dataset to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the file cannot be written.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    save_json(dataset, path.as_ref())
}

/// Loads a dataset from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the file cannot be read and
/// [`TraceIoError::Format`] when it does not contain a dataset.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, TraceIoError> {
    load_json(path.as_ref())
}

/// Saves a single head trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the file cannot be written.
pub fn save_head_trace(trace: &HeadTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    save_json(trace, path.as_ref())
}

/// Loads a single head trace from a JSON file.
///
/// # Errors
///
/// See [`load_dataset`].
pub fn load_head_trace(path: impl AsRef<Path>) -> Result<HeadTrace, TraceIoError> {
    load_json(path.as_ref())
}

/// Saves a network trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the file cannot be written.
pub fn save_network_trace(
    trace: &NetworkTrace,
    path: impl AsRef<Path>,
) -> Result<(), TraceIoError> {
    save_json(trace, path.as_ref())
}

/// Loads a network trace from a JSON file.
///
/// # Errors
///
/// See [`load_dataset`].
pub fn load_network_trace(path: impl AsRef<Path>) -> Result<NetworkTrace, TraceIoError> {
    load_json(path.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::{GazeConfig, HeadTraceGenerator};
    use ee360_video::catalog::VideoCatalog;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ee360-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn dataset_roundtrip() {
        let catalog = VideoCatalog::paper_default();
        let dataset = Dataset::generate(&catalog, 2, 5);
        let path = tmp("dataset.json");
        save_dataset(&dataset, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back, dataset);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn head_trace_roundtrip() {
        let catalog = VideoCatalog::paper_default();
        let spec = catalog.video(6).unwrap();
        let trace = HeadTraceGenerator::new(GazeConfig::default()).generate(spec, 0, 9);
        let path = tmp("head.json");
        save_head_trace(&trace, &path).unwrap();
        let back = load_head_trace(&path).unwrap();
        assert_eq!(back, trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn network_trace_roundtrip() {
        let trace = NetworkTrace::paper_trace2(120, 3);
        let path = tmp("net.json");
        save_network_trace(&trace, &path).unwrap();
        let back = load_network_trace(&path).unwrap();
        assert_eq!(back, trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_dataset("/definitely/not/a/path.json").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn malformed_file_is_format_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = load_network_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        let _ = std::fs::remove_file(&path);
    }
}
