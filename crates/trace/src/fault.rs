//! Deterministic fault injection on top of a [`NetworkTrace`].
//!
//! The paper's evaluation (Section V) only exercises *benign* bandwidth
//! fluctuation; real LTE clients additionally survive dead-radio windows,
//! lost or corrupt segments and decoder hiccups. This module composes a
//! seedable, replay-deterministic fault schedule — a [`FaultPlan`] — over
//! any trace:
//!
//! * **Outages** — true zero-bandwidth windows (tunnels, airplane-mode
//!   toggles, deep handover failures); downloads make no progress.
//! * **Latency spikes** — windows where every request pays an extra RTT
//!   before its first byte (bufferbloat, congested basestations).
//! * **Segment loss** — a request vanishes entirely; the client only
//!   learns via its own timeout.
//! * **Segment corruption** — the payload arrives but fails its checksum
//!   and must be refetched.
//! * **Decoder failures** — the hardware decoder wedges on a segment and
//!   must be reinitialised before a retry decodes.
//!
//! Two determinism rules make same-seed replay byte-identical:
//!
//! 1. *Windowed* faults (outages, spikes) are pre-generated into a sorted
//!    event list by a seeded [`StdRng`] walk, so the schedule is a pure
//!    function of `(config, seed)`.
//! 2. *Per-attempt* faults (loss, corruption, decoder) are pure hashes of
//!    `(seed, kind, segment, attempt)` — retrying segment 7 never shifts
//!    the fate of segment 8, no matter how many attempts it takes.

use ee360_support::rng::StdRng;

use crate::network::NetworkTrace;

/// The kinds of fault a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Zero-bandwidth window.
    Outage,
    /// Extra first-byte latency window.
    LatencySpike,
}

ee360_support::impl_json_enum!(FaultKind {
    Outage,
    LatencySpike
});

/// One scheduled (windowed) fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Which fault this is.
    pub kind: FaultKind,
    /// Window start, seconds of wall-clock time.
    pub start_sec: f64,
    /// Window length, seconds.
    pub duration_sec: f64,
    /// Kind-specific magnitude: unused (0) for outages, the extra
    /// first-byte latency in seconds for latency spikes.
    pub magnitude: f64,
}

ee360_support::impl_json_struct!(FaultEvent {
    kind,
    start_sec,
    duration_sec,
    magnitude
});

impl FaultEvent {
    /// Whether `t_sec` falls inside this event's window.
    pub fn covers(&self, t_sec: f64) -> bool {
        t_sec >= self.start_sec && t_sec < self.start_sec + self.duration_sec
    }

    /// The window's end time, seconds.
    pub fn end_sec(&self) -> f64 {
        self.start_sec + self.duration_sec
    }
}

/// Rates and probabilities a generated [`FaultPlan`] draws from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Expected zero-bandwidth outages per minute of wall-clock time.
    pub outage_rate_per_min: f64,
    /// Outage length bounds, seconds (uniform).
    pub outage_min_sec: f64,
    /// Upper outage length bound, seconds.
    pub outage_max_sec: f64,
    /// Expected latency-spike windows per minute.
    pub spike_rate_per_min: f64,
    /// Spike window length bounds, seconds (uniform).
    pub spike_min_sec: f64,
    /// Upper spike window length bound, seconds.
    pub spike_max_sec: f64,
    /// Extra first-byte latency inside a spike window, seconds (uniform
    /// upper bound; lower bound is half of it).
    pub spike_extra_sec: f64,
    /// Per-(segment, attempt) probability the request vanishes.
    pub loss_prob: f64,
    /// Per-(segment, attempt) probability the payload arrives corrupt.
    pub corruption_prob: f64,
    /// Per-segment probability the decoder wedges on first decode.
    pub decoder_failure_prob: f64,
}

ee360_support::impl_json_struct!(FaultConfig {
    outage_rate_per_min,
    outage_min_sec,
    outage_max_sec,
    spike_rate_per_min,
    spike_min_sec,
    spike_max_sec,
    spike_extra_sec,
    loss_prob,
    corruption_prob,
    decoder_failure_prob
});

impl FaultConfig {
    /// No faults at all (the benign baseline).
    pub fn none() -> Self {
        Self {
            outage_rate_per_min: 0.0,
            outage_min_sec: 0.0,
            outage_max_sec: 0.0,
            spike_rate_per_min: 0.0,
            spike_min_sec: 0.0,
            spike_max_sec: 0.0,
            spike_extra_sec: 0.0,
            loss_prob: 0.0,
            corruption_prob: 0.0,
            decoder_failure_prob: 0.0,
        }
    }

    /// A moderately hostile LTE environment: roughly one short outage and
    /// one latency-spike window per two minutes, 2% loss, 1% corruption,
    /// 1% decoder failures.
    pub fn chaos_default() -> Self {
        Self {
            outage_rate_per_min: 0.5,
            outage_min_sec: 2.0,
            outage_max_sec: 8.0,
            spike_rate_per_min: 0.5,
            spike_min_sec: 3.0,
            spike_max_sec: 10.0,
            spike_extra_sec: 0.8,
            loss_prob: 0.02,
            corruption_prob: 0.01,
            decoder_failure_prob: 0.01,
        }
    }

    fn validate(&self) {
        assert!(
            self.outage_rate_per_min >= 0.0 && self.spike_rate_per_min >= 0.0,
            "fault rates must be non-negative"
        );
        assert!(
            self.outage_max_sec >= self.outage_min_sec && self.outage_min_sec >= 0.0,
            "outage duration bounds must satisfy 0 <= min <= max"
        );
        assert!(
            self.spike_max_sec >= self.spike_min_sec && self.spike_min_sec >= 0.0,
            "spike duration bounds must satisfy 0 <= min <= max"
        );
        assert!(self.spike_extra_sec >= 0.0, "spike latency must be >= 0");
        for p in [
            self.loss_prob,
            self.corruption_prob,
            self.decoder_failure_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        }
    }
}

/// Salts separating the per-attempt fault hash streams.
const SALT_LOSS: u64 = 0x4C4F_5353; // "LOSS"
const SALT_CORRUPT: u64 = 0x434F_5252; // "CORR"
const SALT_DECODER: u64 = 0x4445_4344; // "DECD"

/// A deterministic fault schedule.
///
/// # Example
///
/// ```
/// use ee360_trace::fault::{FaultConfig, FaultPlan};
///
/// let plan = FaultPlan::generate(FaultConfig::chaos_default(), 300.0, 7);
/// // Same seed, same schedule — byte-identical JSON.
/// let replay = FaultPlan::generate(FaultConfig::chaos_default(), 300.0, 7);
/// assert_eq!(plan, replay);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    events: Vec<FaultEvent>,
}

ee360_support::impl_json_struct!(FaultPlan {
    config,
    seed,
    events
});

impl FaultPlan {
    /// A plan with no faults (all queries report a healthy link).
    pub fn none() -> Self {
        Self {
            config: FaultConfig::none(),
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A plan with exactly one zero-bandwidth outage — the canonical chaos
    /// scenario (10 s dead radio mid-stream) and the building block for
    /// hand-written schedules.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or starts in the past.
    pub fn single_outage(start_sec: f64, duration_sec: f64) -> Self {
        Self::none().and_outage(start_sec, duration_sec)
    }

    /// Adds one zero-bandwidth outage window (builder-style composition).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or starts before time zero.
    pub fn and_outage(mut self, start_sec: f64, duration_sec: f64) -> Self {
        assert!(start_sec >= 0.0, "outage must start at or after time zero");
        assert!(duration_sec > 0.0, "outage must have positive duration");
        self.events.push(FaultEvent {
            kind: FaultKind::Outage,
            start_sec,
            duration_sec,
            magnitude: 0.0,
        });
        self.sort_events();
        self
    }

    /// Adds one latency-spike window adding `extra_sec` of first-byte
    /// latency to every request issued inside it.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, starts before time zero, or the
    /// extra latency is negative.
    pub fn and_latency_spike(mut self, start_sec: f64, duration_sec: f64, extra_sec: f64) -> Self {
        assert!(start_sec >= 0.0, "spike must start at or after time zero");
        assert!(duration_sec > 0.0, "spike must have positive duration");
        assert!(extra_sec >= 0.0, "extra latency must be non-negative");
        self.events.push(FaultEvent {
            kind: FaultKind::LatencySpike,
            start_sec,
            duration_sec,
            magnitude: extra_sec,
        });
        self.sort_events();
        self
    }

    /// Overrides the per-attempt fault probabilities of a hand-built plan
    /// (loss / corruption / decoder failures), keeping its windows.
    pub fn with_attempt_faults(mut self, config: FaultConfig, seed: u64) -> Self {
        config.validate();
        self.config = config;
        self.seed = seed;
        self
    }

    /// Generates a schedule over `[0, horizon_sec)` from rates in
    /// `config`, fully determined by `seed`.
    ///
    /// The walk visits whole seconds; at each second outside an existing
    /// window it starts an outage with probability `rate/60` (and
    /// likewise for spikes), drawing the window length uniformly from the
    /// configured bounds. Windows never overlap windows of the same kind.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_sec` is not positive or the config is invalid.
    pub fn generate(config: FaultConfig, horizon_sec: f64, seed: u64) -> Self {
        assert!(
            horizon_sec.is_finite() && horizon_sec > 0.0,
            "horizon must be positive"
        );
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut outage_free_at = 0.0f64;
        let mut spike_free_at = 0.0f64;
        // One Bernoulli draw per whole second, stepping in f64 so the
        // loop variable never round-trips through an integer cast.
        let mut t = 0.0f64;
        while t < horizon_sec {
            if t >= outage_free_at
                && config.outage_rate_per_min > 0.0
                && rng.gen_bool((config.outage_rate_per_min / 60.0).min(1.0))
            {
                let duration = if config.outage_max_sec > config.outage_min_sec {
                    rng.gen_range(config.outage_min_sec..config.outage_max_sec)
                } else {
                    config.outage_min_sec
                };
                if duration > 0.0 {
                    events.push(FaultEvent {
                        kind: FaultKind::Outage,
                        start_sec: t,
                        duration_sec: duration,
                        magnitude: 0.0,
                    });
                    outage_free_at = t + duration;
                }
            }
            if t >= spike_free_at
                && config.spike_rate_per_min > 0.0
                && rng.gen_bool((config.spike_rate_per_min / 60.0).min(1.0))
            {
                let duration = if config.spike_max_sec > config.spike_min_sec {
                    rng.gen_range(config.spike_min_sec..config.spike_max_sec)
                } else {
                    config.spike_min_sec
                };
                let extra = rng.gen_range(config.spike_extra_sec * 0.5..=config.spike_extra_sec);
                if duration > 0.0 && extra > 0.0 {
                    events.push(FaultEvent {
                        kind: FaultKind::LatencySpike,
                        start_sec: t,
                        duration_sec: duration,
                        magnitude: extra,
                    });
                    spike_free_at = t + duration;
                }
            }
            t += 1.0;
        }
        let mut plan = Self {
            config,
            seed,
            events,
        };
        plan.sort_events();
        plan
    }

    fn sort_events(&mut self) {
        self.events.sort_by(|a, b| {
            a.start_sec
                .total_cmp(&b.start_sec)
                .then_with(|| (a.kind as usize).cmp(&(b.kind as usize)))
        });
    }

    /// The scheduled windowed events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The per-attempt fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// `true` while a zero-bandwidth outage covers `t_sec`.
    pub fn in_outage(&self, t_sec: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == FaultKind::Outage && e.covers(t_sec))
    }

    /// Seconds until the outage covering `t_sec` ends (`0` outside one).
    pub fn outage_remaining_sec(&self, t_sec: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::Outage && e.covers(t_sec))
            .map(|e| e.end_sec() - t_sec)
            .fold(0.0, f64::max)
    }

    /// Extra first-byte latency a request issued at `t_sec` pays, seconds.
    pub fn extra_latency_sec(&self, t_sec: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::LatencySpike && e.covers(t_sec))
            .map(|e| e.magnitude)
            .fold(0.0, f64::max)
    }

    /// Whether attempt `attempt` at segment `segment` vanishes (loss).
    /// Pure in `(seed, segment, attempt)`.
    pub fn segment_lost(&self, segment: usize, attempt: usize) -> bool {
        self.attempt_fault(SALT_LOSS, segment, attempt, self.config.loss_prob)
    }

    /// Whether attempt `attempt` at segment `segment` arrives corrupt.
    pub fn segment_corrupt(&self, segment: usize, attempt: usize) -> bool {
        self.attempt_fault(SALT_CORRUPT, segment, attempt, self.config.corruption_prob)
    }

    /// Whether the decoder wedges on its first decode of `segment`.
    pub fn decoder_fails(&self, segment: usize) -> bool {
        self.attempt_fault(SALT_DECODER, segment, 0, self.config.decoder_failure_prob)
    }

    fn attempt_fault(&self, salt: u64, segment: usize, attempt: usize, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        // One fresh SplitMix64-seeded stream per (salt, segment, attempt):
        // a pure hash, so retries elsewhere never perturb this draw.
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.rotate_left(17))
            .wrapping_add((segment as u64).wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add((attempt as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        StdRng::seed_from_u64(mix).gen_f64() < prob
    }

    /// Total scheduled outage time, seconds.
    pub fn total_outage_sec(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::Outage)
            .map(|e| e.duration_sec)
            .sum()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// A [`NetworkTrace`] with a [`FaultPlan`] composed on top: the link the
/// resilient download pipeline actually sees.
///
/// # Example
///
/// ```
/// use ee360_trace::fault::{FaultPlan, FaultyLink};
/// use ee360_trace::network::NetworkTrace;
///
/// let net = NetworkTrace::from_samples(vec![4.0e6; 60]);
/// let plan = FaultPlan::single_outage(10.0, 5.0);
/// let link = FaultyLink::new(&net, &plan);
/// assert_eq!(link.bandwidth_at(12.0), 0.0); // dead mid-outage
/// assert_eq!(link.bandwidth_at(20.0), 4.0e6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultyLink<'a> {
    trace: &'a NetworkTrace,
    plan: &'a FaultPlan,
}

impl<'a> FaultyLink<'a> {
    /// Composes a plan over a trace.
    pub fn new(trace: &'a NetworkTrace, plan: &'a FaultPlan) -> Self {
        Self { trace, plan }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &NetworkTrace {
        self.trace
    }

    /// The composed fault plan.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Bandwidth at `t_sec` with outages applied, bits per second.
    pub fn bandwidth_at(&self, t_sec: f64) -> f64 {
        if self.plan.in_outage(t_sec) {
            0.0
        } else {
            self.trace.bandwidth_at(t_sec)
        }
    }

    /// Deadline-bounded download over the faulty link: latency spikes
    /// delay the first byte, outages freeze progress. Returns the elapsed
    /// time (including the spike latency) or `None` when `deadline_sec`
    /// expires first. Always terminates.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `start_sec` is negative, or `deadline_sec` is
    /// not positive.
    pub fn try_download(&self, bits: f64, start_sec: f64, deadline_sec: f64) -> Option<f64> {
        assert!(bits >= 0.0, "bits must be non-negative");
        assert!(start_sec >= 0.0, "start time must be non-negative");
        assert!(
            deadline_sec.is_finite() && deadline_sec > 0.0,
            "deadline must be positive"
        );
        let latency = self.plan.extra_latency_sec(start_sec);
        if latency >= deadline_sec {
            return None;
        }
        if bits <= 0.0 {
            return Some(latency);
        }
        let end = start_sec + deadline_sec;
        let mut remaining = bits;
        let mut t = start_sec + latency;
        while t < end {
            let bw = self.bandwidth_at(t);
            let slot_end = (t.floor() + 1.0).min(end);
            let capacity = bw * (slot_end - t);
            if bw > 0.0 && remaining <= capacity {
                return Some(t + remaining / bw - start_sec);
            }
            remaining -= capacity;
            t = slot_end;
        }
        None
    }

    /// Bits delivered over `[start_sec, start_sec + duration_sec)` with
    /// outages (but not spike latency) applied — the salvageable part of
    /// an abandoned download.
    pub fn bits_delivered(&self, start_sec: f64, duration_sec: f64) -> f64 {
        assert!(start_sec >= 0.0, "start time must be non-negative");
        assert!(
            duration_sec.is_finite() && duration_sec >= 0.0,
            "duration must be non-negative and finite"
        );
        let end = start_sec + duration_sec;
        let mut delivered = 0.0;
        let mut t = start_sec;
        while t < end {
            let slot_end = (t.floor() + 1.0).min(end);
            delivered += self.bandwidth_at(t) * (slot_end - t);
            t = slot_end;
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::json::to_string;
    use ee360_support::prelude::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::generate(FaultConfig::chaos_default(), 600.0, 11);
        let b = FaultPlan::generate(FaultConfig::chaos_default(), 600.0, 11);
        assert_eq!(a, b);
        assert_eq!(to_string(&a).unwrap(), to_string(&b).unwrap());
        let c = FaultPlan::generate(FaultConfig::chaos_default(), 600.0, 12);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn chaos_default_actually_schedules_faults() {
        let plan = FaultPlan::generate(FaultConfig::chaos_default(), 600.0, 3);
        assert!(!plan.events().is_empty(), "10 minutes must draw something");
        assert!(plan.total_outage_sec() > 0.0);
        assert!(plan
            .events()
            .iter()
            .any(|e| e.kind == FaultKind::LatencySpike));
    }

    #[test]
    fn windows_of_one_kind_never_overlap() {
        let plan = FaultPlan::generate(FaultConfig::chaos_default(), 1200.0, 5);
        for kind in [FaultKind::Outage, FaultKind::LatencySpike] {
            let mut windows: Vec<&FaultEvent> =
                plan.events().iter().filter(|e| e.kind == kind).collect();
            windows.sort_by(|a, b| a.start_sec.partial_cmp(&b.start_sec).unwrap());
            for pair in windows.windows(2) {
                assert!(
                    pair[1].start_sec >= pair[0].end_sec() - 1e-9,
                    "{kind:?} windows overlap: {:?} then {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn attempt_faults_are_pure_hashes() {
        let plan = FaultPlan::none().with_attempt_faults(
            FaultConfig {
                loss_prob: 0.3,
                corruption_prob: 0.3,
                decoder_failure_prob: 0.3,
                ..FaultConfig::none()
            },
            99,
        );
        for segment in 0..50 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.segment_lost(segment, attempt),
                    plan.segment_lost(segment, attempt)
                );
                assert_eq!(
                    plan.segment_corrupt(segment, attempt),
                    plan.segment_corrupt(segment, attempt)
                );
            }
            assert_eq!(plan.decoder_fails(segment), plan.decoder_fails(segment));
        }
        // The draws are not all identical across segments.
        let losses: Vec<bool> = (0..200).map(|k| plan.segment_lost(k, 0)).collect();
        assert!(losses.iter().any(|l| *l) && losses.iter().any(|l| !*l));
    }

    #[test]
    fn zero_probability_never_faults() {
        let plan = FaultPlan::none();
        for k in 0..100 {
            assert!(!plan.segment_lost(k, 0));
            assert!(!plan.segment_corrupt(k, 1));
            assert!(!plan.decoder_fails(k));
        }
    }

    #[test]
    fn outage_queries() {
        let plan = FaultPlan::single_outage(10.0, 5.0);
        assert!(!plan.in_outage(9.9));
        assert!(plan.in_outage(10.0));
        assert!(plan.in_outage(14.9));
        assert!(!plan.in_outage(15.0));
        assert!((plan.outage_remaining_sec(12.0) - 3.0).abs() < 1e-12);
        assert_eq!(plan.outage_remaining_sec(20.0), 0.0);
    }

    #[test]
    fn latency_spike_queries() {
        let plan = FaultPlan::none().and_latency_spike(5.0, 4.0, 0.7);
        assert_eq!(plan.extra_latency_sec(4.9), 0.0);
        assert!((plan.extra_latency_sec(6.0) - 0.7).abs() < 1e-12);
        assert_eq!(plan.extra_latency_sec(9.0), 0.0);
    }

    #[test]
    fn faulty_link_freezes_during_outage() {
        let net = NetworkTrace::from_samples(vec![4.0e6; 30]);
        let plan = FaultPlan::single_outage(2.0, 3.0);
        let link = FaultyLink::new(&net, &plan);
        // 2 Mb starting at t=2: 3 s dead, then 0.5 s at 4 Mbps.
        let d = link.try_download(2.0e6, 2.0, 10.0).expect("fits");
        assert!((d - 3.5).abs() < 1e-9, "got {d}");
        // Issued with too tight a deadline, it gives up.
        assert_eq!(link.try_download(2.0e6, 2.0, 3.2), None);
        // Clean portions behave exactly like the raw trace.
        let clean = net.download_time(2.0e6, 10.0);
        let faulty = link.try_download(2.0e6, 10.0, 10.0).expect("fits");
        assert!((clean - faulty).abs() < 1e-9);
    }

    #[test]
    fn spike_latency_delays_first_byte() {
        let net = NetworkTrace::from_samples(vec![4.0e6; 10]);
        let plan = FaultPlan::none().and_latency_spike(0.0, 5.0, 0.5);
        let link = FaultyLink::new(&net, &plan);
        let d = link.try_download(2.0e6, 1.0, 5.0).expect("fits");
        assert!((d - 1.0).abs() < 1e-9, "0.5 s latency + 0.5 s payload: {d}");
    }

    #[test]
    fn bits_delivered_sees_outages() {
        let net = NetworkTrace::from_samples(vec![4.0e6; 10]);
        let plan = FaultPlan::single_outage(1.0, 2.0);
        let link = FaultyLink::new(&net, &plan);
        assert!((link.bits_delivered(0.0, 4.0) - 8.0e6).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::generate(FaultConfig::chaos_default(), 300.0, 42);
        let json = to_string(&plan).unwrap();
        let back: FaultPlan = ee360_support::json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_outage_panics() {
        let _ = FaultPlan::single_outage(3.0, 0.0);
    }

    proptest! {
        #[test]
        fn schedule_determinism_under_any_seed(seed in 0u64..1_000_000) {
            let a = FaultPlan::generate(FaultConfig::chaos_default(), 240.0, seed);
            let b = FaultPlan::generate(FaultConfig::chaos_default(), 240.0, seed);
            prop_assert_eq!(to_string(&a).unwrap(), to_string(&b).unwrap());
        }

        #[test]
        fn events_stay_inside_horizon(seed in 0u64..10_000, horizon in 60.0f64..900.0) {
            let plan = FaultPlan::generate(FaultConfig::chaos_default(), horizon, seed);
            for e in plan.events() {
                prop_assert!(e.start_sec >= 0.0 && e.start_sec < horizon);
                prop_assert!(e.duration_sec > 0.0);
            }
        }

        #[test]
        fn outage_download_never_faster_than_clean(
            bits in 1.0e5f64..8.0e6, start in 0.0f64..20.0,
        ) {
            let net = NetworkTrace::paper_trace2(120, 3);
            let plan = FaultPlan::single_outage(10.0, 6.0);
            let link = FaultyLink::new(&net, &plan);
            let clean = net.download_time(bits, start);
            if let Some(faulty) = link.try_download(bits, start, 120.0) {
                prop_assert!(faulty >= clean - 1e-9);
            }
        }
    }
}
