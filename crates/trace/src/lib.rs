//! Trace substrate: synthetic head-movement and LTE bandwidth traces.
//!
//! The paper evaluates over two external artifacts we cannot ship:
//!
//! 1. the MMSys'17 head-movement dataset \[8\] (48 users watching 360°
//!    videos), and
//! 2. an LTE throughput trace \[27\] (linearly scaled into *trace 1* and
//!    *trace 2*).
//!
//! This crate provides their synthetic stand-ins (see DESIGN.md for the
//! substitution argument):
//!
//! * [`head`] — a stochastic gaze simulator with fixation, smooth-pursuit
//!   and exploration phases, driven by each video's behaviour profile
//!   (focused videos 1–4 vs. exploratory videos 5–8). Calibrated so the
//!   view-switching-speed distribution matches Fig. 5 (switching above
//!   10°/s roughly 30% of the time).
//! * [`network`] — a bounded AR(1) LTE-like bandwidth trace; *trace 2*
//!   averages 3.9 Mbps within \[2.3, 8.4\] Mbps and *trace 1* is exactly
//!   2× trace 2, the paper's own construction.
//! * [`dataset`] — bundles per-video user populations and the train/eval
//!   split (40 users construct Ptiles, 8 users evaluate).
//! * [`fault`] — seedable, replay-deterministic fault schedules layered
//!   over any network trace: zero-bandwidth outages, latency spikes,
//!   segment loss/corruption and decoder failures, for the resilience
//!   pipeline and chaos runs.
//!
//! Everything is deterministic given a `u64` seed.
//!
//! # Example
//!
//! ```
//! use ee360_trace::head::{GazeConfig, HeadTraceGenerator};
//! use ee360_video::catalog::VideoCatalog;
//!
//! let catalog = VideoCatalog::paper_default();
//! let generator = HeadTraceGenerator::new(GazeConfig::default());
//! let trace = generator.generate(catalog.video(1).unwrap(), 0, 42);
//! assert_eq!(trace.video_id(), 1);
//! assert!(trace.duration_sec() > 300.0);
//! ```

pub mod dataset;
pub mod fault;
pub mod head;
pub mod io;
pub mod mmsys;
pub mod network;
pub mod stats;

pub use dataset::{Dataset, VideoTraces};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultyLink};
pub use head::{GazeConfig, HeadTrace, HeadTraceError, HeadTraceGenerator};
pub use io::{load_dataset, save_dataset, TraceIoError};
pub use mmsys::{load_head_trace as load_mmsys_trace, MmsysError};
pub use network::{LteProfile, NetworkTrace};
pub use stats::{gaze_stats, GazeStats};
