//! Rectangular tile regions with longitude wraparound.
//!
//! A Ptile is a rectangular block of conventional tiles encoded as one large
//! tile (Section IV-A). [`TileRegion`] represents such a block: a contiguous
//! range of rows and a contiguous, possibly wrapping, range of columns.

use crate::grid::{TileGrid, TileId};

/// A rectangular block of tiles on a [`TileGrid`].
///
/// Rows are a plain inclusive range (`row_min..=row_max`); columns start at
/// `col_start` and span `col_span` columns eastwards, wrapping past the
/// antimeridian if needed.
///
/// # Example
///
/// ```
/// use ee360_geom::grid::{TileGrid, TileId};
/// use ee360_geom::region::TileRegion;
///
/// let grid = TileGrid::paper_default();
/// let region = TileRegion::from_tiles(
///     &grid,
///     [TileId::new(1, 7), TileId::new(1, 0), TileId::new(2, 0)],
/// ).unwrap();
/// assert_eq!(region.tile_count(), 4); // 2 rows × 2 cols (wrapping 7→0)
/// assert!(region.contains(TileId::new(2, 7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRegion {
    row_min: usize,
    row_max: usize,
    col_start: usize,
    col_span: usize,
    grid_cols: usize,
}

ee360_support::impl_json_struct!(TileRegion {
    row_min,
    row_max,
    col_start,
    col_span,
    grid_cols
});

impl TileRegion {
    /// Creates a region explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `row_min > row_max`, `col_span` is zero or exceeds the
    /// grid's column count, or `col_start` is out of range.
    pub fn new(
        grid: &TileGrid,
        row_min: usize,
        row_max: usize,
        col_start: usize,
        col_span: usize,
    ) -> Self {
        assert!(row_min <= row_max, "row_min must not exceed row_max");
        assert!(row_max < grid.rows(), "row_max out of range");
        assert!(col_start < grid.cols(), "col_start out of range");
        assert!(
            col_span >= 1 && col_span <= grid.cols(),
            "col_span must be in 1..=cols"
        );
        Self {
            row_min,
            row_max,
            col_start,
            col_span,
            grid_cols: grid.cols(),
        }
    }

    /// The minimal region covering all given tiles.
    ///
    /// Columns are treated circularly: the bounding arc is the shortest
    /// contiguous column range containing every tile's column. Returns
    /// `None` for an empty tile set.
    pub fn from_tiles<I>(grid: &TileGrid, tiles: I) -> Option<Self>
    where
        I: IntoIterator<Item = TileId>,
    {
        let tiles: Vec<TileId> = tiles.into_iter().collect();
        if tiles.is_empty() {
            return None;
        }
        let (row_min, row_max) = tiles.iter().fold((usize::MAX, 0), |(lo, hi), t| {
            (lo.min(t.row), hi.max(t.row))
        });

        // Find the shortest circular arc of columns covering all tile columns:
        // equivalently, remove the largest gap between consecutive occupied
        // columns (sorted circularly).
        let mut cols: Vec<usize> = tiles.iter().map(|t| t.col).collect();
        cols.sort_unstable();
        cols.dedup();
        let n = grid.cols();
        if cols.len() == n {
            return Some(Self::new(grid, row_min, row_max, 0, n));
        }
        let mut best_gap = 0usize;
        let mut best_after = 0usize; // index into cols: arc starts after this gap
        for i in 0..cols.len() {
            let next = cols[(i + 1) % cols.len()];
            let gap = (next + n - cols[i] - 1) % n;
            if gap > best_gap {
                best_gap = gap;
                best_after = (i + 1) % cols.len();
            }
        }
        let col_start = cols[best_after];
        let col_end = cols[(best_after + cols.len() - 1) % cols.len()];
        let col_span = (col_end + n - col_start) % n + 1;
        Some(Self::new(grid, row_min, row_max, col_start, col_span))
    }

    /// First (top) row of the region.
    pub fn row_min(&self) -> usize {
        self.row_min
    }

    /// Last (bottom) row of the region, inclusive.
    pub fn row_max(&self) -> usize {
        self.row_max
    }

    /// Westernmost column of the region.
    pub fn col_start(&self) -> usize {
        self.col_start
    }

    /// Number of columns the region spans.
    pub fn col_span(&self) -> usize {
        self.col_span
    }

    /// Number of rows the region spans.
    pub fn row_span(&self) -> usize {
        self.row_max - self.row_min + 1
    }

    /// Total number of tiles in the region.
    pub fn tile_count(&self) -> usize {
        self.row_span() * self.col_span
    }

    /// Returns `true` if the tile lies inside the region.
    pub fn contains(&self, t: TileId) -> bool {
        if t.row < self.row_min || t.row > self.row_max {
            return false;
        }
        let offset = (t.col + self.grid_cols - self.col_start) % self.grid_cols;
        offset < self.col_span
    }

    /// Returns `true` if every tile of `other` lies inside `self`.
    pub fn contains_region(&self, other: &TileRegion) -> bool {
        other.tiles().all(|t| self.contains(t))
    }

    /// Iterates over the tiles of the region, row-major, west to east.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        let rows = self.row_min..=self.row_max;
        rows.flat_map(move |row| {
            (0..self.col_span)
                .map(move |dc| TileId::new(row, (self.col_start + dc) % self.grid_cols))
        })
    }

    /// Width of the region in degrees of yaw on the given grid.
    pub fn width_deg(&self, grid: &TileGrid) -> f64 {
        self.col_span as f64 * grid.tile_width_deg()
    }

    /// Height of the region in degrees of pitch on the given grid.
    pub fn height_deg(&self, grid: &TileGrid) -> f64 {
        self.row_span() as f64 * grid.tile_height_deg()
    }

    /// Fraction of the whole frame the region covers, in planar degrees.
    pub fn area_fraction(&self, grid: &TileGrid) -> f64 {
        self.tile_count() as f64 / grid.tile_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    fn grid() -> TileGrid {
        TileGrid::paper_default()
    }

    #[test]
    fn from_single_tile() {
        let r = TileRegion::from_tiles(&grid(), [TileId::new(2, 3)]).unwrap();
        assert_eq!(r.tile_count(), 1);
        assert!(r.contains(TileId::new(2, 3)));
        assert!(!r.contains(TileId::new(2, 4)));
    }

    #[test]
    fn from_empty_is_none() {
        assert!(TileRegion::from_tiles(&grid(), []).is_none());
    }

    #[test]
    fn bounding_simple_block() {
        let tiles = [TileId::new(1, 2), TileId::new(2, 4), TileId::new(1, 3)];
        let r = TileRegion::from_tiles(&grid(), tiles).unwrap();
        assert_eq!(r.row_min(), 1);
        assert_eq!(r.row_max(), 2);
        assert_eq!(r.col_start(), 2);
        assert_eq!(r.col_span(), 3);
        assert_eq!(r.tile_count(), 6);
    }

    #[test]
    fn bounding_wraps_shortest_arc() {
        // Columns 7 and 0 should give a 2-wide wrapped region, not 8-wide.
        let tiles = [TileId::new(0, 7), TileId::new(0, 0)];
        let r = TileRegion::from_tiles(&grid(), tiles).unwrap();
        assert_eq!(r.col_span(), 2);
        assert_eq!(r.col_start(), 7);
        assert!(r.contains(TileId::new(0, 0)));
        assert!(!r.contains(TileId::new(0, 4)));
    }

    #[test]
    fn all_columns_occupied() {
        let tiles: Vec<_> = (0..8).map(|c| TileId::new(1, c)).collect();
        let r = TileRegion::from_tiles(&grid(), tiles).unwrap();
        assert_eq!(r.col_span(), 8);
        assert_eq!(r.tile_count(), 8);
    }

    #[test]
    fn tiles_iterator_matches_contains() {
        let r = TileRegion::new(&grid(), 1, 2, 6, 3);
        let listed: std::collections::HashSet<_> = r.tiles().collect();
        assert_eq!(listed.len(), r.tile_count());
        for t in grid().iter() {
            assert_eq!(listed.contains(&t), r.contains(t), "{t:?}");
        }
    }

    #[test]
    fn geometry_in_degrees() {
        let g = grid();
        let r = TileRegion::new(&g, 1, 2, 0, 3);
        assert!((r.width_deg(&g) - 135.0).abs() < 1e-12);
        assert!((r.height_deg(&g) - 90.0).abs() < 1e-12);
        assert!((r.area_fraction(&g) - 6.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn contains_region_subset() {
        let g = grid();
        let big = TileRegion::new(&g, 0, 3, 0, 8);
        let small = TileRegion::new(&g, 1, 2, 6, 3);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
    }

    #[test]
    #[should_panic(expected = "col_span")]
    fn zero_span_panics() {
        let _ = TileRegion::new(&grid(), 0, 0, 0, 0);
    }

    proptest! {
        #[test]
        fn bounding_region_contains_inputs(
            tiles in ee360_support::prop::collection::vec((0usize..4, 0usize..8), 1..12)
        ) {
            let g = grid();
            let ids: Vec<TileId> = tiles.iter().map(|&(r, c)| TileId::new(r, c)).collect();
            let region = TileRegion::from_tiles(&g, ids.clone()).unwrap();
            for t in &ids {
                prop_assert!(region.contains(*t), "{:?} not in {:?}", t, region);
            }
        }

        #[test]
        fn bounding_region_is_minimal_rows(
            tiles in ee360_support::prop::collection::vec((0usize..4, 0usize..8), 1..12)
        ) {
            let g = grid();
            let ids: Vec<TileId> = tiles.iter().map(|&(r, c)| TileId::new(r, c)).collect();
            let region = TileRegion::from_tiles(&g, ids.clone()).unwrap();
            let rmin = ids.iter().map(|t| t.row).min().unwrap();
            let rmax = ids.iter().map(|t| t.row).max().unwrap();
            prop_assert_eq!(region.row_min(), rmin);
            prop_assert_eq!(region.row_max(), rmax);
        }

        #[test]
        fn iterator_count_matches(
            row_min in 0usize..4, extra in 0usize..4,
            col_start in 0usize..8, span in 1usize..=8,
        ) {
            let g = grid();
            let row_max = (row_min + extra).min(3);
            let r = TileRegion::new(&g, row_min, row_max, col_start, span);
            prop_assert_eq!(r.tiles().count(), r.tile_count());
        }
    }
}
