//! Spherical and equirectangular geometry for 360° video streaming.
//!
//! This crate provides the geometric substrate used throughout the `ee360`
//! workspace:
//!
//! * [`angles`] — degree helpers with wraparound-aware arithmetic,
//! * [`sphere`] — unit orientation vectors and great-circle math,
//! * [`viewport`] — the user's field of view on the equirectangular plane,
//! * [`grid`] — the conventional tile grid (e.g. 4 rows × 8 columns),
//! * [`region`] — rectangular tile regions with longitude wraparound
//!   (the shape of a Ptile),
//! * [`switching`] — view-switching speed (Eq. 5 of the paper).
//!
//! # Conventions
//!
//! The 360° frame is an equirectangular plane: **yaw** (longitude) in
//! `[-180, 180)` degrees increasing eastwards, **pitch** (latitude) in
//! `[-90, 90]` degrees increasing upwards. A [`viewport::ViewCenter`] is a
//! point on that plane; a [`viewport::Viewport`] adds a field of view
//! (100°×100° by default, matching the paper).
//!
//! # Example
//!
//! ```
//! use ee360_geom::grid::TileGrid;
//! use ee360_geom::viewport::{ViewCenter, Viewport};
//!
//! let grid = TileGrid::new(4, 8);
//! let vp = Viewport::new(ViewCenter::new(0.0, 0.0), 100.0, 100.0);
//! let tiles = grid.fov_block(&vp);
//! assert_eq!(tiles.len(), 9); // 3×3 FoV tiles, as in the paper
//! ```

pub mod angles;
pub mod grid;
pub mod projection;
pub mod region;
pub mod sphere;
pub mod switching;
pub mod viewport;

pub use angles::{angular_diff_deg, wrap_yaw_deg};
pub use grid::{TileGrid, TileId};
pub use projection::{pixel_coverage, pixel_direction, tile_pixel_weights};
pub use region::TileRegion;
pub use sphere::Orientation;
pub use switching::{switching_speed_deg_per_sec, SwitchingSample};
pub use viewport::{ViewCenter, Viewport};
