//! View-switching speed (Eq. 5 of the paper).
//!
//! The switching speed between two gaze samples is the great-circle angle
//! between their orientation vectors divided by the elapsed time:
//!
//! ```text
//! S_fov = arccos( (O_{i-1} · O_i) / (‖O_{i-1}‖ ‖O_i‖) ) / (t_i − t_{i-1})
//! ```
//!
//! Speeds are in degrees per second. The paper observes (Fig. 5) that users
//! exceed 10°/s for more than 30% of the time, which is what makes
//! frame-rate reduction worthwhile.

use crate::sphere::Orientation;
use crate::viewport::ViewCenter;

/// A timestamped gaze sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingSample {
    /// Sample time in seconds.
    pub t_sec: f64,
    /// Gaze direction at that time.
    pub center: ViewCenter,
}

ee360_support::impl_json_struct!(SwitchingSample { t_sec, center });

impl SwitchingSample {
    /// Creates a sample.
    pub fn new(t_sec: f64, center: ViewCenter) -> Self {
        Self { t_sec, center }
    }
}

/// View-switching speed between two samples, in degrees per second (Eq. 5).
///
/// # Panics
///
/// Panics if the samples are not strictly increasing in time.
///
/// # Example
///
/// ```
/// use ee360_geom::switching::{switching_speed_deg_per_sec, SwitchingSample};
/// use ee360_geom::viewport::ViewCenter;
///
/// let a = SwitchingSample::new(0.0, ViewCenter::new(0.0, 0.0));
/// let b = SwitchingSample::new(1.0, ViewCenter::new(20.0, 0.0));
/// assert!((switching_speed_deg_per_sec(&a, &b) - 20.0).abs() < 1e-9);
/// ```
pub fn switching_speed_deg_per_sec(prev: &SwitchingSample, next: &SwitchingSample) -> f64 {
    let dt = next.t_sec - prev.t_sec;
    assert!(dt > 0.0, "samples must be strictly increasing in time");
    let o0 = Orientation::from_view_center(prev.center);
    let o1 = Orientation::from_view_center(next.center);
    o0.angle_to_deg(&o1) / dt
}

/// Per-interval switching speeds over a whole gaze trace.
///
/// Returns one speed per consecutive pair; an input of fewer than two
/// samples yields an empty vector.
pub fn switching_speeds(samples: &[SwitchingSample]) -> Vec<f64> {
    samples
        .windows(2)
        .map(|w| switching_speed_deg_per_sec(&w[0], &w[1]))
        .collect()
}

/// Mean switching speed over a window of samples, in degrees per second.
///
/// Useful as the `S_fov` input to the QoE frame-rate factor (Eq. 4), which
/// needs one representative speed per video segment. Returns `0.0` for
/// traces with fewer than two samples.
pub fn mean_switching_speed(samples: &[SwitchingSample]) -> f64 {
    let speeds = switching_speeds(samples);
    if speeds.is_empty() {
        0.0
    } else {
        speeds.iter().sum::<f64>() / speeds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn static_gaze_has_zero_speed() {
        let c = ViewCenter::new(42.0, -13.0);
        let a = SwitchingSample::new(0.0, c);
        let b = SwitchingSample::new(0.5, c);
        assert!(switching_speed_deg_per_sec(&a, &b) < 1e-9);
    }

    #[test]
    fn speed_scales_with_time() {
        let a = SwitchingSample::new(0.0, ViewCenter::new(0.0, 0.0));
        let b = SwitchingSample::new(2.0, ViewCenter::new(30.0, 0.0));
        assert!((switching_speed_deg_per_sec(&a, &b) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn speed_across_antimeridian_uses_short_arc() {
        let a = SwitchingSample::new(0.0, ViewCenter::new(175.0, 0.0));
        let b = SwitchingSample::new(1.0, ViewCenter::new(-175.0, 0.0));
        assert!((switching_speed_deg_per_sec(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pitch_only_motion() {
        let a = SwitchingSample::new(0.0, ViewCenter::new(0.0, 0.0));
        let b = SwitchingSample::new(1.0, ViewCenter::new(0.0, 45.0));
        assert!((switching_speed_deg_per_sec(&a, &b) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn trace_speeds_length() {
        let samples: Vec<_> = (0..5)
            .map(|i| SwitchingSample::new(i as f64 * 0.02, ViewCenter::new(i as f64, 0.0)))
            .collect();
        assert_eq!(switching_speeds(&samples).len(), 4);
    }

    #[test]
    fn mean_speed_of_uniform_motion() {
        let samples: Vec<_> = (0..11)
            .map(|i| SwitchingSample::new(i as f64 * 0.1, ViewCenter::new(i as f64 * 2.0, 0.0)))
            .collect();
        // 2° per 0.1 s = 20°/s throughout.
        assert!((mean_switching_speed(&samples) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mean_speed_short_trace_is_zero() {
        assert_eq!(mean_switching_speed(&[]), 0.0);
        let one = [SwitchingSample::new(0.0, ViewCenter::default())];
        assert_eq!(mean_switching_speed(&one), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_time_panics() {
        let a = SwitchingSample::new(1.0, ViewCenter::default());
        let b = SwitchingSample::new(1.0, ViewCenter::default());
        let _ = switching_speed_deg_per_sec(&a, &b);
    }

    proptest! {
        #[test]
        fn speed_nonnegative(
            y1 in -180.0f64..180.0, p1 in -90.0f64..90.0,
            y2 in -180.0f64..180.0, p2 in -90.0f64..90.0,
            dt in 0.001f64..10.0,
        ) {
            let a = SwitchingSample::new(0.0, ViewCenter::new(y1, p1));
            let b = SwitchingSample::new(dt, ViewCenter::new(y2, p2));
            prop_assert!(switching_speed_deg_per_sec(&a, &b) >= 0.0);
        }

        #[test]
        fn speed_bounded_by_max_angle(
            y1 in -180.0f64..180.0, p1 in -90.0f64..90.0,
            y2 in -180.0f64..180.0, p2 in -90.0f64..90.0,
        ) {
            let a = SwitchingSample::new(0.0, ViewCenter::new(y1, p1));
            let b = SwitchingSample::new(1.0, ViewCenter::new(y2, p2));
            // Max great-circle angle is 180°.
            prop_assert!(switching_speed_deg_per_sec(&a, &b) <= 180.0 + 1e-9);
        }
    }
}
