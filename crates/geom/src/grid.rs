//! The conventional tile grid.
//!
//! Tile-based 360° streaming divides each equirectangular video segment into
//! a fixed grid of independently decodable tiles — 4 rows × 8 columns in the
//! paper (Fig. 1), 15 × 30 blocks for the Ftile baseline. [`TileGrid`] maps
//! between (yaw, pitch) coordinates and tile indices, and computes which
//! tiles a viewport needs.

use crate::angles::wrap_yaw_deg;
use crate::viewport::{ViewCenter, Viewport};

/// Identifies one tile in a [`TileGrid`]: row 0 is the top (north pole) row,
/// column 0 starts at yaw −180°.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId {
    /// Row index, `0..rows`, top to bottom.
    pub row: usize,
    /// Column index, `0..cols`, west to east starting at yaw −180°.
    pub col: usize,
}

ee360_support::impl_json_struct!(TileId { row, col });

impl TileId {
    /// Creates a tile id.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

/// A fixed equirectangular tile grid.
///
/// # Example
///
/// ```
/// use ee360_geom::grid::TileGrid;
/// let grid = TileGrid::paper_default(); // 4 rows × 8 columns
/// assert_eq!(grid.tile_count(), 32);
/// assert!((grid.tile_width_deg() - 45.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
}

ee360_support::impl_json_struct!(TileGrid { rows, cols });

impl TileGrid {
    /// Creates a grid with the given number of rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one tile");
        Self { rows, cols }
    }

    /// The paper's conventional grid: 4 rows × 8 columns.
    pub fn paper_default() -> Self {
        Self::new(4, 8)
    }

    /// The fine grid used by the Ftile baseline: 15 rows × 30 columns.
    pub fn ftile_blocks() -> Self {
        Self::new(15, 30)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Width of one tile in degrees of yaw.
    pub fn tile_width_deg(&self) -> f64 {
        360.0 / self.cols as f64
    }

    /// Height of one tile in degrees of pitch.
    pub fn tile_height_deg(&self) -> f64 {
        180.0 / self.rows as f64
    }

    /// Flattened index of a tile (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the tile is outside the grid.
    pub fn flat_index(&self, t: TileId) -> usize {
        assert!(t.row < self.rows && t.col < self.cols, "tile out of range");
        t.row * self.cols + t.col
    }

    /// The tile containing a view center.
    pub fn tile_at(&self, p: &ViewCenter) -> TileId {
        let x = (wrap_yaw_deg(p.yaw_deg()) + 180.0) / self.tile_width_deg();
        let col = (x.floor() as isize).rem_euclid(self.cols as isize) as usize;
        // Row 0 is at the top (pitch +90); pitch +90 itself belongs to row 0.
        let y = (90.0 - p.pitch_deg()) / self.tile_height_deg();
        let row = (y.floor() as usize).min(self.rows - 1);
        TileId::new(row, col)
    }

    /// Yaw of the western edge of a column, in `[-180, 180)`.
    pub fn col_west_deg(&self, col: usize) -> f64 {
        wrap_yaw_deg(-180.0 + col as f64 * self.tile_width_deg())
    }

    /// Pitch of the top edge of a row.
    pub fn row_top_deg(&self, row: usize) -> f64 {
        90.0 - row as f64 * self.tile_height_deg()
    }

    /// The center point of a tile.
    pub fn tile_center(&self, t: TileId) -> ViewCenter {
        ViewCenter::new(
            -180.0 + (t.col as f64 + 0.5) * self.tile_width_deg(),
            90.0 - (t.row as f64 + 0.5) * self.tile_height_deg(),
        )
    }

    /// All tiles whose area intersects the viewport box (exact coverage).
    ///
    /// Tiles are half-open in both axes, so a viewport edge exactly on a tile
    /// boundary does not drag in the neighbouring tile.
    pub fn tiles_covering(&self, vp: &Viewport) -> Vec<TileId> {
        let mut out = Vec::new();
        self.tiles_covering_into(vp, &mut out);
        out
    }

    /// [`Self::tiles_covering`] into a caller-owned buffer, for hot loops
    /// that would otherwise allocate a fresh `Vec` per viewport. The
    /// buffer is cleared first; contents and order match
    /// `tiles_covering` exactly.
    pub fn tiles_covering_into(&self, vp: &Viewport, out: &mut Vec<TileId>) {
        out.clear();
        let w = self.tile_width_deg();
        let h = self.tile_height_deg();
        // Column range (wrapping).
        let yaw_min = vp.center().yaw_deg() - vp.fov_h_deg() / 2.0;
        let span_cols = if vp.fov_h_deg() >= 360.0 {
            self.cols
        } else {
            let first = ((yaw_min + 180.0) / w).floor();
            let last = ((yaw_min + vp.fov_h_deg() + 180.0 - 1e-9) / w).floor();
            ((last - first) as usize + 1).min(self.cols)
        };
        let first_col =
            (((yaw_min + 180.0) / w).floor() as isize).rem_euclid(self.cols as isize) as usize;
        // Row range (clamped).
        let row_top = (((90.0 - vp.pitch_max_deg()) / h).floor() as usize).min(self.rows - 1);
        let row_bot =
            (((90.0 - vp.pitch_min_deg() - 1e-9) / h).floor() as usize).min(self.rows - 1);

        out.reserve((row_bot - row_top + 1) * span_cols);
        for row in row_top..=row_bot {
            for dc in 0..span_cols {
                out.push(TileId::new(row, (first_col + dc) % self.cols));
            }
        }
    }

    /// The quantised FoV block: a fixed `⌈fov_v/tile_h⌉ × ⌈fov_h/tile_w⌉`
    /// block of tiles centered on the tile containing the view center.
    ///
    /// This is how the paper's client requests "the FoV tiles": a 100°×100°
    /// viewport on the 4×8 grid always maps to a 3×3 = 9-tile block
    /// (Section II, Fig. 2b). The block wraps horizontally and is shifted —
    /// never shrunk — to stay inside the grid vertically.
    ///
    /// # Example
    ///
    /// ```
    /// use ee360_geom::grid::TileGrid;
    /// use ee360_geom::viewport::{ViewCenter, Viewport};
    /// let grid = TileGrid::paper_default();
    /// let vp = Viewport::paper_fov(ViewCenter::new(0.0, 0.0));
    /// assert_eq!(grid.fov_block(&vp).len(), 9);
    /// ```
    pub fn fov_block(&self, vp: &Viewport) -> Vec<TileId> {
        let block_cols =
            ((vp.fov_h_deg() / self.tile_width_deg()).ceil() as usize).clamp(1, self.cols);
        let block_rows =
            ((vp.fov_v_deg() / self.tile_height_deg()).ceil() as usize).clamp(1, self.rows);
        let center = self.tile_at(&vp.center());

        let first_col = (center.col as isize - (block_cols as isize - 1) / 2)
            .rem_euclid(self.cols as isize) as usize;
        let mut first_row = center.row as isize - (block_rows as isize - 1) / 2;
        first_row = first_row.clamp(0, self.rows as isize - block_rows as isize);
        let first_row = first_row as usize;

        let mut out = Vec::with_capacity(block_rows * block_cols);
        for dr in 0..block_rows {
            for dc in 0..block_cols {
                out.push(TileId::new(first_row + dr, (first_col + dc) % self.cols));
            }
        }
        out
    }

    /// Iterates over every tile in the grid, row-major.
    pub fn iter(&self) -> impl Iterator<Item = TileId> + '_ {
        let cols = self.cols;
        (0..self.tile_count()).map(move |i| TileId::new(i / cols, i % cols))
    }
}

impl Default for TileGrid {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = TileGrid::paper_default();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 8);
        assert_eq!(g.tile_count(), 32);
        assert!((g.tile_width_deg() - 45.0).abs() < 1e-12);
        assert!((g.tile_height_deg() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn tile_at_origin() {
        let g = TileGrid::paper_default();
        // yaw 0 is the start of column 4; pitch 0 is the start of row 2.
        assert_eq!(g.tile_at(&ViewCenter::new(0.0, 0.0)), TileId::new(2, 4));
        assert_eq!(g.tile_at(&ViewCenter::new(0.0, 1.0)), TileId::new(1, 4));
    }

    #[test]
    fn tile_at_extremes() {
        let g = TileGrid::paper_default();
        assert_eq!(g.tile_at(&ViewCenter::new(-180.0, 90.0)), TileId::new(0, 0));
        assert_eq!(g.tile_at(&ViewCenter::new(179.9, -89.9)), TileId::new(3, 7));
        // Pitch exactly -90 still maps into the last row.
        assert_eq!(g.tile_at(&ViewCenter::new(0.0, -90.0)).row, 3);
    }

    #[test]
    fn tile_center_roundtrip() {
        let g = TileGrid::paper_default();
        for t in g.iter() {
            assert_eq!(g.tile_at(&g.tile_center(t)), t);
        }
    }

    #[test]
    fn fov_block_is_nine_tiles() {
        let g = TileGrid::paper_default();
        for yaw in [-180.0, -90.0, 0.0, 33.0, 179.0] {
            for pitch in [-80.0, -30.0, 0.0, 30.0, 80.0] {
                let vp = Viewport::paper_fov(ViewCenter::new(yaw, pitch));
                let block = g.fov_block(&vp);
                assert_eq!(block.len(), 9, "at yaw={yaw} pitch={pitch}");
            }
        }
    }

    #[test]
    fn fov_block_wraps_columns() {
        let g = TileGrid::paper_default();
        let vp = Viewport::paper_fov(ViewCenter::new(-180.0, 0.0));
        let block = g.fov_block(&vp);
        let cols: std::collections::HashSet<_> = block.iter().map(|t| t.col).collect();
        assert!(cols.contains(&7) && cols.contains(&0) && cols.contains(&1));
    }

    #[test]
    fn fov_block_clamped_at_pole() {
        let g = TileGrid::paper_default();
        let vp = Viewport::paper_fov(ViewCenter::new(0.0, 89.0));
        let block = g.fov_block(&vp);
        assert_eq!(block.len(), 9);
        assert!(block.iter().all(|t| t.row <= 2));
        assert!(block.iter().any(|t| t.row == 0));
    }

    #[test]
    fn tiles_covering_contains_center_tile() {
        let g = TileGrid::paper_default();
        let c = ViewCenter::new(12.0, -34.0);
        let vp = Viewport::paper_fov(c);
        let tiles = g.tiles_covering(&vp);
        assert!(tiles.contains(&g.tile_at(&c)));
    }

    #[test]
    fn tiles_covering_full_wrap() {
        let g = TileGrid::paper_default();
        let vp = Viewport::new(ViewCenter::new(0.0, 0.0), 360.0, 180.0);
        assert_eq!(g.tiles_covering(&vp).len(), 32);
    }

    #[test]
    fn tiles_covering_aligned_box_is_exact() {
        let g = TileGrid::paper_default();
        // A 90°×90° box exactly aligned with tile boundaries covers 2×2 tiles.
        let vp = Viewport::new(ViewCenter::new(-135.0, 45.0), 90.0, 90.0);
        assert_eq!(g.tiles_covering(&vp).len(), 4);
    }

    #[test]
    fn flat_index_bijective() {
        let g = TileGrid::new(3, 5);
        let mut seen = std::collections::HashSet::new();
        for t in g.iter() {
            assert!(seen.insert(g.flat_index(t)));
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_rejects_out_of_range() {
        let g = TileGrid::new(2, 2);
        let _ = g.flat_index(TileId::new(2, 0));
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_grid_panics() {
        let _ = TileGrid::new(0, 8);
    }

    proptest! {
        #[test]
        fn tile_at_in_range(
            y in -1000.0f64..1000.0, p in -90.0f64..=90.0,
            rows in 1usize..20, cols in 1usize..40,
        ) {
            let g = TileGrid::new(rows, cols);
            let t = g.tile_at(&ViewCenter::new(y, p));
            prop_assert!(t.row < rows && t.col < cols);
        }

        #[test]
        fn fov_block_size_fixed(
            y in -180.0f64..180.0, p in -90.0f64..=90.0,
        ) {
            let g = TileGrid::paper_default();
            let vp = Viewport::paper_fov(ViewCenter::new(y, p));
            prop_assert_eq!(g.fov_block(&vp).len(), 9);
        }

        #[test]
        fn covering_superset_of_block_center(
            y in -180.0f64..180.0, p in -88.0f64..88.0,
        ) {
            let g = TileGrid::paper_default();
            let vp = Viewport::paper_fov(ViewCenter::new(y, p));
            let covering = g.tiles_covering(&vp);
            // Exact covering has between 9 and 16 tiles for a 100° FoV on 45° tiles.
            prop_assert!(covering.len() >= 6 && covering.len() <= 16);
        }
    }
}
