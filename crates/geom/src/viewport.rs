//! View centers and viewports on the equirectangular plane.
//!
//! A user's gaze is summarised by a [`ViewCenter`] — the (yaw, pitch) point
//! the head-mounted display reports — and the visible area is the
//! [`Viewport`]: the view center plus the device field of view (100°×100°
//! in the paper, Section II).

use crate::angles::{angular_diff_deg, clamp_pitch_deg, wrap_yaw_deg};

/// Field of view used throughout the paper: 100° horizontally and vertically.
pub const PAPER_FOV_DEG: f64 = 100.0;

/// A gaze point on the equirectangular plane.
///
/// Yaw is wrapped into `[-180, 180)`; pitch is clamped into `[-90, 90]`.
///
/// # Example
///
/// ```
/// use ee360_geom::viewport::ViewCenter;
/// let c = ViewCenter::new(190.0, 95.0);
/// assert_eq!(c.yaw_deg(), -170.0);
/// assert_eq!(c.pitch_deg(), 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewCenter {
    yaw_deg: f64,
    pitch_deg: f64,
}

ee360_support::impl_json_struct!(ViewCenter { yaw_deg, pitch_deg });

impl ViewCenter {
    /// Creates a view center, canonicalising yaw and pitch.
    pub fn new(yaw_deg: f64, pitch_deg: f64) -> Self {
        Self {
            yaw_deg: wrap_yaw_deg(yaw_deg),
            pitch_deg: clamp_pitch_deg(pitch_deg),
        }
    }

    /// Yaw (longitude) in degrees, `[-180, 180)`.
    pub fn yaw_deg(&self) -> f64 {
        self.yaw_deg
    }

    /// Pitch (latitude) in degrees, `[-90, 90]`.
    pub fn pitch_deg(&self) -> f64 {
        self.pitch_deg
    }

    /// Planar distance to another view center, in degrees.
    ///
    /// This is the Euclidean distance on the equirectangular plane with
    /// longitude wraparound — the `dist(u, n)` used by the paper's
    /// Algorithm 1 to cluster viewing centers.
    ///
    /// # Example
    ///
    /// ```
    /// use ee360_geom::viewport::ViewCenter;
    /// let a = ViewCenter::new(175.0, 0.0);
    /// let b = ViewCenter::new(-175.0, 0.0);
    /// assert!((a.distance_deg(&b) - 10.0).abs() < 1e-9);
    /// ```
    pub fn distance_deg(&self, other: &Self) -> f64 {
        let dy = angular_diff_deg(self.yaw_deg, other.yaw_deg);
        let dp = self.pitch_deg - other.pitch_deg;
        (dy * dy + dp * dp).sqrt()
    }
}

impl Default for ViewCenter {
    fn default() -> Self {
        Self::new(0.0, 0.0)
    }
}

/// A viewport: a view center plus a field of view.
///
/// The viewport is the axis-aligned box `[yaw - w/2, yaw + w/2] ×
/// [pitch - h/2, pitch + h/2]` on the equirectangular plane, with yaw
/// wraparound and pitch clamping (the box saturates at the poles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    center: ViewCenter,
    fov_h_deg: f64,
    fov_v_deg: f64,
}

ee360_support::impl_json_struct!(Viewport {
    center,
    fov_h_deg,
    fov_v_deg
});

impl Viewport {
    /// Creates a viewport.
    ///
    /// # Panics
    ///
    /// Panics if either field-of-view dimension is not in `(0, 360]`
    /// (horizontal) / `(0, 180]` (vertical).
    pub fn new(center: ViewCenter, fov_h_deg: f64, fov_v_deg: f64) -> Self {
        assert!(
            fov_h_deg > 0.0 && fov_h_deg <= 360.0,
            "horizontal FoV must be in (0, 360], got {fov_h_deg}"
        );
        assert!(
            fov_v_deg > 0.0 && fov_v_deg <= 180.0,
            "vertical FoV must be in (0, 180], got {fov_v_deg}"
        );
        Self {
            center,
            fov_h_deg,
            fov_v_deg,
        }
    }

    /// Creates the paper's standard 100°×100° viewport.
    pub fn paper_fov(center: ViewCenter) -> Self {
        Self::new(center, PAPER_FOV_DEG, PAPER_FOV_DEG)
    }

    /// The view center.
    pub fn center(&self) -> ViewCenter {
        self.center
    }

    /// Horizontal field of view in degrees.
    pub fn fov_h_deg(&self) -> f64 {
        self.fov_h_deg
    }

    /// Vertical field of view in degrees.
    pub fn fov_v_deg(&self) -> f64 {
        self.fov_v_deg
    }

    /// Lower pitch bound of the viewport box (clamped at the pole).
    pub fn pitch_min_deg(&self) -> f64 {
        clamp_pitch_deg(self.center.pitch_deg() - self.fov_v_deg / 2.0)
    }

    /// Upper pitch bound of the viewport box (clamped at the pole).
    pub fn pitch_max_deg(&self) -> f64 {
        clamp_pitch_deg(self.center.pitch_deg() + self.fov_v_deg / 2.0)
    }

    /// Returns `true` if the given point lies inside the viewport box.
    ///
    /// # Example
    ///
    /// ```
    /// use ee360_geom::viewport::{ViewCenter, Viewport};
    /// let vp = Viewport::paper_fov(ViewCenter::new(170.0, 0.0));
    /// assert!(vp.contains(&ViewCenter::new(-160.0, 10.0))); // across the seam
    /// assert!(!vp.contains(&ViewCenter::new(0.0, 0.0)));
    /// ```
    pub fn contains(&self, p: &ViewCenter) -> bool {
        let dy = angular_diff_deg(p.yaw_deg(), self.center.yaw_deg());
        if dy > self.fov_h_deg / 2.0 + 1e-9 {
            return false;
        }
        p.pitch_deg() >= self.pitch_min_deg() - 1e-9 && p.pitch_deg() <= self.pitch_max_deg() + 1e-9
    }

    /// Fraction of the full equirectangular plane the viewport covers,
    /// measured in planar degrees (not solid angle).
    pub fn planar_area_fraction(&self) -> f64 {
        let h = self.fov_h_deg.min(360.0);
        let v = self.pitch_max_deg() - self.pitch_min_deg();
        (h / 360.0) * (v / 180.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn view_center_canonicalises() {
        let c = ViewCenter::new(360.0 + 10.0, -100.0);
        assert!((c.yaw_deg() - 10.0).abs() < 1e-12);
        assert_eq!(c.pitch_deg(), -90.0);
    }

    #[test]
    fn distance_simple() {
        let a = ViewCenter::new(0.0, 0.0);
        let b = ViewCenter::new(3.0, 4.0);
        assert!((a.distance_deg(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_across_seam() {
        let a = ViewCenter::new(179.0, 0.0);
        let b = ViewCenter::new(-179.0, 0.0);
        assert!((a.distance_deg(&b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn viewport_contains_center() {
        let vp = Viewport::paper_fov(ViewCenter::new(42.0, 13.0));
        assert!(vp.contains(&vp.center()));
    }

    #[test]
    fn viewport_excludes_far_points() {
        let vp = Viewport::paper_fov(ViewCenter::new(0.0, 0.0));
        assert!(!vp.contains(&ViewCenter::new(120.0, 0.0)));
        assert!(!vp.contains(&ViewCenter::new(0.0, 80.0)));
    }

    #[test]
    fn viewport_saturates_at_pole() {
        let vp = Viewport::paper_fov(ViewCenter::new(0.0, 80.0));
        assert_eq!(vp.pitch_max_deg(), 90.0);
        assert!((vp.pitch_min_deg() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fov_area_fraction() {
        let vp = Viewport::paper_fov(ViewCenter::new(0.0, 0.0));
        // 100/360 * 100/180
        assert!((vp.planar_area_fraction() - (100.0 / 360.0) * (100.0 / 180.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizontal FoV")]
    fn zero_fov_panics() {
        let _ = Viewport::new(ViewCenter::default(), 0.0, 100.0);
    }

    proptest! {
        #[test]
        fn distance_symmetric(
            y1 in -180.0f64..180.0, p1 in -90.0f64..90.0,
            y2 in -180.0f64..180.0, p2 in -90.0f64..90.0,
        ) {
            let a = ViewCenter::new(y1, p1);
            let b = ViewCenter::new(y2, p2);
            prop_assert!((a.distance_deg(&b) - b.distance_deg(&a)).abs() < 1e-9);
        }

        #[test]
        fn distance_nonnegative_and_zero_to_self(
            y in -180.0f64..180.0, p in -90.0f64..90.0,
        ) {
            let a = ViewCenter::new(y, p);
            prop_assert!(a.distance_deg(&a) < 1e-12);
        }

        #[test]
        fn boundary_points_contained(
            y in -180.0f64..180.0, p in -40.0f64..40.0,
        ) {
            let vp = Viewport::paper_fov(ViewCenter::new(y, p));
            let edge = ViewCenter::new(y + 50.0, p);
            prop_assert!(vp.contains(&edge));
        }
    }
}
