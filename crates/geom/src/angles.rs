//! Degree arithmetic with longitude wraparound.
//!
//! Yaw (longitude) lives on a circle: `-180` and `180` are the same point,
//! and the distance between `170°` and `-170°` is `20°`, not `340°`. The
//! helpers here keep every yaw computation in the canonical `[-180, 180)`
//! range and measure differences along the shorter arc.

/// Wraps an arbitrary yaw (longitude) into the canonical `[-180, 180)` range.
///
/// # Example
///
/// ```
/// use ee360_geom::angles::wrap_yaw_deg;
/// assert_eq!(wrap_yaw_deg(190.0), -170.0);
/// assert_eq!(wrap_yaw_deg(-540.0), -180.0); // 180 wraps to -180
/// assert_eq!(wrap_yaw_deg(-180.0), -180.0);
/// ```
pub fn wrap_yaw_deg(yaw: f64) -> f64 {
    let mut y = (yaw + 180.0) % 360.0;
    if y < 0.0 {
        y += 360.0;
    }
    y - 180.0
}

/// Clamps a pitch (latitude) into `[-90, 90]`.
///
/// Pitch is not circular: looking "past" the pole keeps you at the pole
/// (head-mounted displays clamp the same way).
pub fn clamp_pitch_deg(pitch: f64) -> f64 {
    pitch.clamp(-90.0, 90.0)
}

/// Signed shortest-arc difference `a - b` between two yaw angles, in degrees.
///
/// The result is always in `[-180, 180)`.
///
/// # Example
///
/// ```
/// use ee360_geom::angles::signed_yaw_diff_deg;
/// assert_eq!(signed_yaw_diff_deg(170.0, -170.0), -20.0);
/// assert_eq!(signed_yaw_diff_deg(-170.0, 170.0), 20.0);
/// ```
pub fn signed_yaw_diff_deg(a: f64, b: f64) -> f64 {
    wrap_yaw_deg(a - b)
}

/// Absolute shortest-arc difference between two yaw angles, in degrees.
///
/// Always in `[0, 180]`.
///
/// # Example
///
/// ```
/// use ee360_geom::angles::angular_diff_deg;
/// assert_eq!(angular_diff_deg(170.0, -170.0), 20.0);
/// assert_eq!(angular_diff_deg(0.0, 90.0), 90.0);
/// ```
pub fn angular_diff_deg(a: f64, b: f64) -> f64 {
    signed_yaw_diff_deg(a, b).abs()
}

/// Linear interpolation between two yaw angles along the shorter arc.
///
/// `t = 0` yields `from`, `t = 1` yields `to` (modulo wraparound).
pub fn lerp_yaw_deg(from: f64, to: f64, t: f64) -> f64 {
    let d = signed_yaw_diff_deg(to, from);
    wrap_yaw_deg(from + d * t)
}

/// Converts degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Converts radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn wrap_identity_in_range() {
        assert_eq!(wrap_yaw_deg(0.0), 0.0);
        assert!((wrap_yaw_deg(179.9) - 179.9).abs() < 1e-9);
        assert_eq!(wrap_yaw_deg(-180.0), -180.0);
    }

    #[test]
    fn wrap_180_maps_to_minus_180() {
        assert_eq!(wrap_yaw_deg(180.0), -180.0);
        assert_eq!(wrap_yaw_deg(540.0), -180.0);
    }

    #[test]
    fn wrap_multiple_turns() {
        assert!((wrap_yaw_deg(720.0 + 10.0) - 10.0).abs() < 1e-12);
        assert!((wrap_yaw_deg(-720.0 - 10.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn signed_diff_shorter_arc() {
        assert_eq!(signed_yaw_diff_deg(10.0, 350.0 - 360.0), 20.0);
        assert_eq!(signed_yaw_diff_deg(-170.0, 170.0), 20.0);
        assert_eq!(signed_yaw_diff_deg(170.0, -170.0), -20.0);
    }

    #[test]
    fn lerp_crosses_antimeridian() {
        let mid = lerp_yaw_deg(170.0, -170.0, 0.5);
        assert!((angular_diff_deg(mid, 180.0)).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp_yaw_deg(30.0, 60.0, 0.0), 30.0);
        assert_eq!(lerp_yaw_deg(30.0, 60.0, 1.0), 60.0);
    }

    #[test]
    fn clamp_pitch_bounds() {
        assert_eq!(clamp_pitch_deg(95.0), 90.0);
        assert_eq!(clamp_pitch_deg(-95.0), -90.0);
        assert_eq!(clamp_pitch_deg(45.0), 45.0);
    }

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-180.0, -90.0, 0.0, 45.0, 180.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn wrap_always_in_range(y in -1e6f64..1e6f64) {
            let w = wrap_yaw_deg(y);
            prop_assert!((-180.0..180.0).contains(&w));
        }

        #[test]
        fn wrap_is_idempotent(y in -1e6f64..1e6f64) {
            let w = wrap_yaw_deg(y);
            prop_assert!((wrap_yaw_deg(w) - w).abs() < 1e-9);
        }

        #[test]
        fn diff_symmetric(a in -180.0f64..180.0, b in -180.0f64..180.0) {
            prop_assert!((angular_diff_deg(a, b) - angular_diff_deg(b, a)).abs() < 1e-9);
        }

        #[test]
        fn diff_bounded(a in -1e4f64..1e4, b in -1e4f64..1e4) {
            let d = angular_diff_deg(a, b);
            prop_assert!((0.0..=180.0).contains(&d));
        }

        #[test]
        fn diff_triangle_inequality(
            a in -180.0f64..180.0,
            b in -180.0f64..180.0,
            c in -180.0f64..180.0,
        ) {
            let ab = angular_diff_deg(a, b);
            let bc = angular_diff_deg(b, c);
            let ac = angular_diff_deg(a, c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
