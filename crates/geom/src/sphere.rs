//! Unit orientation vectors and great-circle math.
//!
//! Head-mounted displays report the gaze direction as an orientation vector;
//! the paper's Eq. 5 computes view-switching speed from the angle between two
//! such vectors. [`Orientation`] converts between (yaw, pitch) on the
//! equirectangular plane and a 3-D unit vector, and measures great-circle
//! angles between orientations.

use crate::angles::{deg_to_rad, rad_to_deg, wrap_yaw_deg};
use crate::viewport::ViewCenter;

/// A gaze direction as a 3-D unit vector.
///
/// The frame is right-handed: `x` points at (yaw 0°, pitch 0°), `y` points
/// east (yaw 90°), and `z` points up (pitch 90°).
///
/// # Example
///
/// ```
/// use ee360_geom::sphere::Orientation;
/// let front = Orientation::from_yaw_pitch_deg(0.0, 0.0);
/// let up = Orientation::from_yaw_pitch_deg(0.0, 90.0);
/// assert!((front.angle_to_deg(&up) - 90.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Orientation {
    x: f64,
    y: f64,
    z: f64,
}

impl Orientation {
    /// Builds an orientation from raw vector components, normalising them.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero, which has no direction.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        let n = (x * x + y * y + z * z).sqrt();
        assert!(n > 1e-12, "orientation vector must be non-zero");
        Self {
            x: x / n,
            y: y / n,
            z: z / n,
        }
    }

    /// Builds an orientation from yaw/pitch in degrees.
    pub fn from_yaw_pitch_deg(yaw_deg: f64, pitch_deg: f64) -> Self {
        let yaw = deg_to_rad(wrap_yaw_deg(yaw_deg));
        let pitch = deg_to_rad(pitch_deg.clamp(-90.0, 90.0));
        Self {
            x: pitch.cos() * yaw.cos(),
            y: pitch.cos() * yaw.sin(),
            z: pitch.sin(),
        }
    }

    /// Builds an orientation from a [`ViewCenter`].
    pub fn from_view_center(c: ViewCenter) -> Self {
        Self::from_yaw_pitch_deg(c.yaw_deg(), c.pitch_deg())
    }

    /// The `x` component of the unit vector.
    pub fn x(&self) -> f64 {
        self.x
    }

    /// The `y` component of the unit vector.
    pub fn y(&self) -> f64 {
        self.y
    }

    /// The `z` component of the unit vector.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Dot product with another orientation.
    pub fn dot(&self, other: &Self) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Great-circle angle to another orientation, in degrees (`[0, 180]`).
    ///
    /// This is the `arccos` term of the paper's Eq. 5.
    pub fn angle_to_deg(&self, other: &Self) -> f64 {
        rad_to_deg(self.dot(other).clamp(-1.0, 1.0).acos())
    }

    /// Converts back to a view center (yaw, pitch) in degrees.
    pub fn to_view_center(self) -> ViewCenter {
        let pitch = rad_to_deg(self.z.clamp(-1.0, 1.0).asin());
        let yaw = if self.x.abs() < 1e-12 && self.y.abs() < 1e-12 {
            0.0 // at a pole, yaw is undefined; pick 0
        } else {
            rad_to_deg(self.y.atan2(self.x))
        };
        ViewCenter::new(yaw, pitch)
    }

    /// Spherical linear interpolation towards `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`. Falls back to the
    /// endpoint when the two orientations are (anti)parallel.
    pub fn slerp(&self, other: &Self, t: f64) -> Self {
        let d = self.dot(other).clamp(-1.0, 1.0);
        let theta = d.acos();
        if theta.abs() < 1e-9 {
            return *self;
        }
        let sin_theta = theta.sin();
        if sin_theta.abs() < 1e-9 {
            // Antipodal: no unique geodesic; snap to endpoint.
            return if t < 0.5 { *self } else { *other };
        }
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Self::new(
            a * self.x + b * other.x,
            a * self.y + b * other.y,
            a * self.z + b * other.z,
        )
    }

    /// Euclidean norm of the underlying vector (always ≈ 1 by construction).
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn axes() {
        let front = Orientation::from_yaw_pitch_deg(0.0, 0.0);
        assert!((front.x() - 1.0).abs() < 1e-12);
        let east = Orientation::from_yaw_pitch_deg(90.0, 0.0);
        assert!((east.y() - 1.0).abs() < 1e-12);
        let up = Orientation::from_yaw_pitch_deg(0.0, 90.0);
        assert!((up.z() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_between_orthogonal_axes() {
        let a = Orientation::from_yaw_pitch_deg(0.0, 0.0);
        let b = Orientation::from_yaw_pitch_deg(90.0, 0.0);
        assert!((a.angle_to_deg(&b) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn angle_antipodal() {
        let a = Orientation::from_yaw_pitch_deg(0.0, 0.0);
        let b = Orientation::from_yaw_pitch_deg(180.0, 0.0);
        assert!((a.angle_to_deg(&b) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_yaw_pitch() {
        for &(y, p) in &[(0.0, 0.0), (45.0, 30.0), (-120.0, -60.0), (179.0, 89.0)] {
            let o = Orientation::from_yaw_pitch_deg(y, p);
            let c = o.to_view_center();
            assert!(
                (c.yaw_deg() - y).abs() < 1e-9,
                "yaw roundtrip failed for {y}"
            );
            assert!(
                (c.pitch_deg() - p).abs() < 1e-9,
                "pitch roundtrip failed for {p}"
            );
        }
    }

    #[test]
    fn pole_roundtrip_picks_yaw_zero() {
        let o = Orientation::from_yaw_pitch_deg(123.0, 90.0);
        let c = o.to_view_center();
        assert!((c.pitch_deg() - 90.0).abs() < 1e-9);
        assert_eq!(c.yaw_deg(), 0.0);
    }

    #[test]
    fn slerp_midpoint_is_equidistant() {
        let a = Orientation::from_yaw_pitch_deg(0.0, 0.0);
        let b = Orientation::from_yaw_pitch_deg(60.0, 0.0);
        let m = a.slerp(&b, 0.5);
        assert!((m.angle_to_deg(&a) - 30.0).abs() < 1e-9);
        assert!((m.angle_to_deg(&b) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn slerp_endpoints() {
        let a = Orientation::from_yaw_pitch_deg(10.0, 20.0);
        let b = Orientation::from_yaw_pitch_deg(-50.0, -10.0);
        assert!(a.slerp(&b, 0.0).angle_to_deg(&a) < 1e-9);
        assert!(a.slerp(&b, 1.0).angle_to_deg(&b) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_vector_panics() {
        let _ = Orientation::new(0.0, 0.0, 0.0);
    }

    /// Historical proptest shrink (see `proptest-regressions/sphere.txt`):
    /// a steep-pitch orientation whose norm and self-angle once tripped the
    /// acos conditioning bounds.
    #[test]
    fn regression_steep_pitch_orientation() {
        let o = Orientation::from_yaw_pitch_deg(169.20783697342696, -50.06958864667774);
        assert!((o.norm() - 1.0).abs() < 1e-9);
        assert!(o.angle_to_deg(&o) < 1e-4);
    }

    proptest! {
        #[test]
        fn always_unit_norm(y in -180.0f64..180.0, p in -90.0f64..90.0) {
            let o = Orientation::from_yaw_pitch_deg(y, p);
            prop_assert!((o.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn angle_symmetric(
            y1 in -180.0f64..180.0, p1 in -90.0f64..90.0,
            y2 in -180.0f64..180.0, p2 in -90.0f64..90.0,
        ) {
            let a = Orientation::from_yaw_pitch_deg(y1, p1);
            let b = Orientation::from_yaw_pitch_deg(y2, p2);
            prop_assert!((a.angle_to_deg(&b) - b.angle_to_deg(&a)).abs() < 1e-9);
        }

        #[test]
        fn angle_to_self_is_zero(y in -180.0f64..180.0, p in -90.0f64..90.0) {
            let a = Orientation::from_yaw_pitch_deg(y, p);
            // acos is ill-conditioned near 1, so allow a loose bound.
            prop_assert!(a.angle_to_deg(&a) < 1e-4);
        }

        #[test]
        fn slerp_stays_on_sphere(
            y1 in -180.0f64..180.0, p1 in -89.0f64..89.0,
            y2 in -180.0f64..180.0, p2 in -89.0f64..89.0,
            t in 0.0f64..1.0,
        ) {
            let a = Orientation::from_yaw_pitch_deg(y1, p1);
            let b = Orientation::from_yaw_pitch_deg(y2, p2);
            let m = a.slerp(&b, t);
            prop_assert!((m.norm() - 1.0).abs() < 1e-9);
        }
    }
}
