//! Chart builders on top of [`crate::svg`].

use crate::svg::SvgDocument;

/// The series palette (colour-blind-safe, Okabe–Ito).
const PALETTE: [&str; 6] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9",
];

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 44.0;

fn nice_max(value: f64) -> f64 {
    if value <= 0.0 {
        return 1.0;
    }
    let mag = 10f64.powf(value.log10().floor());
    let norm = value / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// A grouped bar chart: categories along x, one bar per series per
/// category — the shape of the paper's Figs. 9–11.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedBarChart {
    title: String,
    x_label: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl GroupedBarChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the category labels.
    pub fn categories(&mut self, categories: Vec<String>) {
        self.categories = categories;
    }

    /// Adds one series.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "bar values must be non-negative"
        );
        self.series.push((name.into(), values));
    }

    /// Renders to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no series were added, or a series' length differs from the
    /// category count.
    pub fn render(&self, width: u32, height: u32) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let n_cat = self.categories.len();
        assert!(n_cat > 0, "chart needs categories");
        for (name, values) in &self.series {
            assert_eq!(
                values.len(),
                n_cat,
                "series `{name}` length must match the categories"
            );
        }
        let mut doc = SvgDocument::new(width, height);
        let plot_w = width as f64 - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = height as f64 - MARGIN_TOP - MARGIN_BOTTOM;
        let y0 = MARGIN_TOP + plot_h;

        let max = nice_max(
            self.series
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .fold(0.0, f64::max),
        );

        // Axes and gridlines.
        doc.text(8.0, 20.0, 13.0, &self.title);
        doc.line(MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, y0, "#222222", 1.0);
        doc.line(MARGIN_LEFT, y0, MARGIN_LEFT + plot_w, y0, "#222222", 1.0);
        for tick in 0..=4 {
            let v = max * tick as f64 / 4.0;
            let y = y0 - plot_h * tick as f64 / 4.0;
            doc.line(MARGIN_LEFT, y, MARGIN_LEFT + plot_w, y, "#dddddd", 0.5);
            doc.text_anchored(MARGIN_LEFT - 6.0, y + 3.0, 10.0, &format_tick(v), "end");
        }
        doc.text_anchored(
            MARGIN_LEFT + plot_w / 2.0,
            height as f64 - 8.0,
            11.0,
            &self.x_label,
            "middle",
        );
        doc.text(8.0, MARGIN_TOP - 6.0, 11.0, &self.y_label);

        // Bars.
        let group_w = plot_w / n_cat as f64;
        let bar_w = group_w * 0.8 / self.series.len() as f64;
        for (ci, cat) in self.categories.iter().enumerate() {
            let gx = MARGIN_LEFT + group_w * ci as f64 + group_w * 0.1;
            for (si, (_, values)) in self.series.iter().enumerate() {
                let h = plot_h * values[ci] / max;
                doc.rect(
                    gx + bar_w * si as f64,
                    y0 - h,
                    bar_w.max(1.0) - 0.5,
                    h,
                    PALETTE[si % PALETTE.len()],
                );
            }
            doc.text_anchored(gx + group_w * 0.4, y0 + 14.0, 10.0, cat, "middle");
        }

        // Legend.
        let mut lx = MARGIN_LEFT;
        for (si, (name, _)) in self.series.iter().enumerate() {
            doc.rect(
                lx,
                MARGIN_TOP - 18.0,
                10.0,
                10.0,
                PALETTE[si % PALETTE.len()],
            );
            doc.text(lx + 14.0, MARGIN_TOP - 9.0, 10.0, name);
            lx += 14.0 + 7.0 * name.len() as f64 + 18.0;
        }
        doc.render()
    }
}

/// A CDF chart: one monotone line per series (Figs. 5 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct CdfChart {
    title: String,
    x_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl CdfChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series of `(value, cumulative fraction)` points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or a fraction leaves
    /// `[0, 1]`.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        assert!(points.len() >= 2, "a CDF needs at least two points");
        assert!(
            points.iter().all(|(_, f)| (0.0..=1.0).contains(f)),
            "CDF fractions must be in [0, 1]"
        );
        self.series.push((name.into(), points));
    }

    /// Renders to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no series were added.
    pub fn render(&self, width: u32, height: u32) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let mut doc = SvgDocument::new(width, height);
        let plot_w = width as f64 - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = height as f64 - MARGIN_TOP - MARGIN_BOTTOM;
        let y0 = MARGIN_TOP + plot_h;

        let x_min = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().map(|(x, _)| *x))
            .fold(f64::INFINITY, f64::min);
        let x_max = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().map(|(x, _)| *x))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(x_min + 1e-9);

        doc.text(8.0, 20.0, 13.0, &self.title);
        doc.line(MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, y0, "#222222", 1.0);
        doc.line(MARGIN_LEFT, y0, MARGIN_LEFT + plot_w, y0, "#222222", 1.0);
        for tick in 0..=4 {
            let f = tick as f64 / 4.0;
            let y = y0 - plot_h * f;
            doc.line(MARGIN_LEFT, y, MARGIN_LEFT + plot_w, y, "#dddddd", 0.5);
            doc.text_anchored(MARGIN_LEFT - 6.0, y + 3.0, 10.0, &format!("{f:.2}"), "end");
            let x = MARGIN_LEFT + plot_w * f;
            let xv = x_min + (x_max - x_min) * f;
            doc.text_anchored(x, y0 + 14.0, 10.0, &format_tick(xv), "middle");
        }
        doc.text_anchored(
            MARGIN_LEFT + plot_w / 2.0,
            height as f64 - 8.0,
            11.0,
            &self.x_label,
            "middle",
        );

        for (si, (name, points)) in self.series.iter().enumerate() {
            let mapped: Vec<(f64, f64)> = points
                .iter()
                .map(|(x, f)| {
                    (
                        MARGIN_LEFT + plot_w * (x - x_min) / (x_max - x_min),
                        y0 - plot_h * f,
                    )
                })
                .collect();
            doc.polyline(&mapped, PALETTE[si % PALETTE.len()], 1.5);
            doc.text(
                MARGIN_LEFT + 8.0,
                MARGIN_TOP + 14.0 * (si as f64 + 1.0),
                10.0,
                name,
            );
        }
        doc.render()
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar_chart() -> GroupedBarChart {
        let mut c = GroupedBarChart::new("t", "x", "y");
        c.categories(vec!["a".into(), "b".into()]);
        c.series("s1", vec![1.0, 2.0]);
        c.series("s2", vec![3.0, 0.5]);
        c
    }

    #[test]
    fn bar_chart_renders_all_bars() {
        let svg = bar_chart().render(400, 300);
        // background + axis rects: count <rect: 1 bg + 4 bars + 2 legend.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 7);
        assert!(svg.contains("s1"));
        assert!(svg.contains("s2"));
    }

    #[test]
    fn nice_max_rounds_up() {
        assert_eq!(nice_max(0.93), 1.0);
        assert_eq!(nice_max(1.2), 2.0);
        assert_eq!(nice_max(4.7), 5.0);
        assert_eq!(nice_max(7.3), 10.0);
        assert_eq!(nice_max(2300.0), 5000.0);
        assert_eq!(nice_max(0.0), 1.0);
    }

    #[test]
    fn cdf_chart_maps_into_plot_area() {
        let mut c = CdfChart::new("cdf", "speed");
        c.series("all", vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
        let svg = c.render(400, 300);
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("all"));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_panics() {
        let mut c = GroupedBarChart::new("t", "x", "y");
        c.categories(vec!["a".into()]);
        c.series("s", vec![1.0, 2.0]);
        let _ = c.render(100, 100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bar_panics() {
        let mut c = GroupedBarChart::new("t", "x", "y");
        c.series("s", vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_cdf_panics() {
        let c = CdfChart::new("t", "x");
        let _ = c.render(100, 100);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn bad_fraction_panics() {
        let mut c = CdfChart::new("t", "x");
        c.series("s", vec![(0.0, 0.0), (1.0, 1.5)]);
    }
}
