//! Minimal SVG chart writer — no dependencies, just enough to regenerate
//! the paper's figures as vector graphics next to the text tables.
//!
//! * [`svg`] — a tiny element tree that renders to an SVG string,
//! * [`charts`] — grouped bar charts (Figs. 9–11 style) and CDF line
//!   charts (Figs. 5, 8 style).
//!
//! # Example
//!
//! ```
//! use ee360_viz::charts::GroupedBarChart;
//!
//! let mut chart = GroupedBarChart::new("energy vs Ctile", "video", "mJ/segment");
//! chart.series("Ctile", vec![2400.0, 2500.0]);
//! chart.series("Ours", vec![1200.0, 1300.0]);
//! chart.categories(vec!["1".into(), "2".into()]);
//! let svg = chart.render(640, 360);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("Ours"));
//! ```

pub mod charts;
pub mod svg;

pub use charts::{CdfChart, GroupedBarChart};
pub use svg::SvgDocument;
