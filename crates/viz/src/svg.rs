//! A tiny SVG element tree.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgDocument {
    width: u32,
    height: u32,
    elements: Vec<String>,
}

/// Escapes text content for XML.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDocument {
    /// Creates a document of the given pixel size with a white background.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be non-zero");
        let mut doc = Self {
            width,
            height,
            elements: Vec::new(),
        };
        doc.rect(0.0, 0.0, width as f64, height as f64, "#ffffff");
        doc
    }

    /// Document width, pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Document height, pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of elements added so far (including the background).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` when only the background exists — never, in practice.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        self.elements.push(format!(
            r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"##
        ));
    }

    /// Adds a line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.elements.push(format!(
            r##"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"##
        ));
    }

    /// Adds a polyline through the given points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        assert!(points.len() >= 2, "a polyline needs at least two points");
        let mut path = String::new();
        for (x, y) in points {
            let _ = write!(path, "{x:.2},{y:.2} ");
        }
        self.elements.push(format!(
            r##"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"##,
            path.trim_end()
        ));
    }

    /// Adds left-anchored text.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        self.text_anchored(x, y, size, content, "start");
    }

    /// Adds text with an explicit anchor (`start`, `middle`, `end`).
    pub fn text_anchored(&mut self, x: f64, y: f64, size: f64, content: &str, anchor: &str) {
        self.elements.push(format!(
            r##"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"##,
            escape(content)
        ));
    }

    /// Renders the document to an SVG string.
    pub fn render(&self) -> String {
        let mut out = format!(
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"##,
            self.width, self.height, self.width, self.height
        );
        out.push('\n');
        for e in &self.elements {
            out.push_str(e);
            out.push('\n');
        }
        out.push_str("</svg>\n");
        out
    }

    /// Writes the document to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_envelope() {
        let doc = SvgDocument::new(100, 50);
        let s = doc.render();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains(r#"width="100""#));
        assert!(s.contains(r#"height="50""#));
    }

    #[test]
    fn background_is_first_element() {
        let doc = SvgDocument::new(10, 10);
        assert_eq!(doc.len(), 1);
        assert!(doc.render().contains("#ffffff"));
        assert!(!doc.is_empty());
    }

    #[test]
    fn elements_accumulate() {
        let mut doc = SvgDocument::new(10, 10);
        doc.rect(1.0, 1.0, 2.0, 2.0, "#ff0000");
        doc.line(0.0, 0.0, 5.0, 5.0, "#000000", 1.0);
        doc.polyline(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)], "#00ff00", 1.5);
        doc.text(1.0, 9.0, 4.0, "hello");
        assert_eq!(doc.len(), 5);
        let s = doc.render();
        assert!(s.contains("<rect"));
        assert!(s.contains("<line"));
        assert!(s.contains("<polyline"));
        assert!(s.contains(">hello</text>"));
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDocument::new(10, 10);
        doc.text(0.0, 0.0, 4.0, "a<b & \"c\"");
        let s = doc.render();
        assert!(s.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!s.contains("a<b"));
    }

    #[test]
    fn save_roundtrip() {
        let mut doc = SvgDocument::new(20, 20);
        doc.rect(0.0, 0.0, 5.0, 5.0, "#123456");
        let mut path = std::env::temp_dir();
        path.push(format!("ee360-viz-{}.svg", std::process::id()));
        doc.save(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, doc.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn short_polyline_panics() {
        let mut doc = SvgDocument::new(10, 10);
        doc.polyline(&[(0.0, 0.0)], "#000", 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_panics() {
        let _ = SvgDocument::new(0, 10);
    }
}
