//! Descriptive statistics used across the evaluation pipeline.
//!
//! * [`harmonic_mean`] — the paper's bandwidth estimator (Section IV-C):
//!   the harmonic mean of recent download throughputs damps outliers better
//!   than the arithmetic mean under bursty LTE conditions.
//! * [`Ecdf`] — empirical CDFs, used for Fig. 5 (switching speed) and
//!   Fig. 8 (Ptile size ratios).
//! * [`percentile`], [`mean`], [`std_dev`], [`pearson_correlation`] —
//!   assorted summaries reported in the paper's tables.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns `0.0` for fewer
/// than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Harmonic mean of strictly positive samples.
///
/// The paper uses the harmonic mean of the last several segments' download
/// throughputs to estimate future bandwidth, because it "eliminates the
/// impacts of fluctuations" (Section IV-C).
///
/// # Panics
///
/// Panics if the slice is empty or any sample is not strictly positive.
///
/// # Example
///
/// ```
/// use ee360_numeric::stats::harmonic_mean;
/// let hm = harmonic_mean(&[2.0, 6.0, 6.0]);
/// assert!((hm - 3.6).abs() < 1e-12);
/// ```
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "harmonic mean of an empty slice");
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "harmonic mean requires strictly positive samples"
    );
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if the slice is empty or `p` is out of range.
///
/// # Example
///
/// ```
/// use ee360_numeric::stats::percentile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    // lint:allow(hot-path-alloc, "sort scratch: percentile needs an owned copy, bounded by the caller's sample window")
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// The paper reports r = 0.9791 between its fitted Q_o model and the VMAF
/// training data (Section III-C1).
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two samples.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    assert!(xs.len() >= 2, "correlation needs at least two samples");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    // lint:allow(float-compare, "intentional exact check: correlation is undefined only at exactly zero variance")
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// An empirical cumulative distribution function.
///
/// # Example
///
/// ```
/// use ee360_numeric::stats::Ecdf;
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_above(10.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF of an empty sample set");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty sample sets); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// Evaluates the ECDF at evenly spaced points for plotting: returns
    /// `(value, cumulative_fraction)` pairs at each sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn harmonic_mean_vs_arithmetic() {
        // HM <= AM always; equal iff all samples equal.
        let xs = [1.0, 4.0, 4.0];
        assert!(harmonic_mean(&xs) < mean(&xs));
        let eq = [3.0, 3.0, 3.0];
        assert!((harmonic_mean(&eq) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_damps_spikes() {
        // One huge outlier barely moves the harmonic mean.
        let base = harmonic_mean(&[4.0, 4.0, 4.0, 4.0]);
        let spiked = harmonic_mean(&[4.0, 4.0, 4.0, 400.0]);
        assert!((spiked - base) / base < 0.40);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn harmonic_mean_rejects_zero() {
        let _ = harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn harmonic_mean_rejects_empty() {
        let _ = harmonic_mean(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 25.0), 15.0);
        assert_eq!(percentile(&xs, 75.0), 25.0);
        assert_eq!(median(&xs), 20.0);
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson_correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_is_zero() {
        assert_eq!(pearson_correlation(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn ecdf_basics() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_above(3.0), 0.25);
    }

    #[test]
    fn ecdf_points_monotone() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_quantile_matches_percentile() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let cdf = Ecdf::new(xs.clone());
        assert_eq!(cdf.quantile(0.5), median(&xs));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn hm_le_am(xs in ee360_support::prop::collection::vec(0.1f64..100.0, 1..50)) {
            prop_assert!(harmonic_mean(&xs) <= mean(&xs) + 1e-9);
        }

        #[test]
        fn percentile_within_range(
            xs in ee360_support::prop::collection::vec(-100.0f64..100.0, 1..50),
            p in 0.0f64..=100.0,
        ) {
            let v = percentile(&xs, p);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn ecdf_fraction_in_unit_interval(
            xs in ee360_support::prop::collection::vec(-50.0f64..50.0, 1..40),
            probe in -60.0f64..60.0,
        ) {
            let cdf = Ecdf::new(xs);
            let f = cdf.fraction_at_or_below(probe);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn correlation_bounded(
            pairs in ee360_support::prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..40)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson_correlation(&xs, &ys);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
