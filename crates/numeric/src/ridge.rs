//! Ridge regression.
//!
//! The paper predicts the user's future viewing center with ridge regression
//! over the recent (x, y) gaze coordinate time series (Section IV-B),
//! because the ℓ₂ penalty is "more robust to deal with overfitting" on the
//! short, noisy history window. This module solves the regularised normal
//! equations `(XᵀX + λI) w = Xᵀy` with the Cholesky solver; the intercept
//! column is never penalised.

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;
use crate::solve::{cholesky_solve, SolveError};

/// Error returned by [`RidgeRegression::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RidgeError {
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Feature rows have inconsistent lengths, or targets mismatch.
    ShapeMismatch,
    /// The regularisation is non-positive and the system is singular.
    Singular,
    /// `lambda` must be non-negative.
    NegativeLambda,
}

impl fmt::Display for RidgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RidgeError::EmptyTrainingSet => write!(f, "training set is empty"),
            RidgeError::ShapeMismatch => {
                write!(f, "feature rows or targets have mismatched shapes")
            }
            RidgeError::Singular => write!(f, "normal equations are singular; increase lambda"),
            RidgeError::NegativeLambda => write!(f, "lambda must be non-negative"),
        }
    }
}

impl Error for RidgeError {}

impl From<SolveError> for RidgeError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::ShapeMismatch => RidgeError::ShapeMismatch,
            SolveError::Singular => RidgeError::Singular,
        }
    }
}

/// A fitted ridge regression model `y ≈ w·x + b`.
///
/// # Example
///
/// ```
/// use ee360_numeric::ridge::RidgeRegression;
///
/// // Predict the next coordinate of a linear head motion.
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = (0..8).map(|i| 5.0 + 3.0 * i as f64).collect();
/// let model = RidgeRegression::fit(&xs, &ys, 1e-6)?;
/// assert!((model.predict(&[10.0]) - 35.0).abs() < 1e-3);
/// # Ok::<(), ee360_numeric::ridge::RidgeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
    lambda: f64,
}

impl RidgeRegression {
    /// Fits a ridge model to feature rows `xs` and targets `ys`.
    ///
    /// The intercept is fitted but not penalised (features and targets are
    /// centered before solving, the standard formulation).
    ///
    /// # Errors
    ///
    /// Returns an error if inputs are empty or ragged, `lambda < 0`, or the
    /// (regularised) normal equations are singular — the latter only happens
    /// with `lambda == 0` and collinear features.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, RidgeError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(RidgeError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(RidgeError::ShapeMismatch);
        }
        if lambda < 0.0 {
            return Err(RidgeError::NegativeLambda);
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|r| r.len() != d) {
            return Err(RidgeError::ShapeMismatch);
        }
        let n = xs.len();

        // Center features and targets so the intercept is unpenalised.
        let mut x_mean = vec![0.0f64; d];
        for row in xs {
            for (m, v) in x_mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let y_mean = ys.iter().sum::<f64>() / n as f64;

        let centered: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| row.iter().zip(&x_mean).map(|(v, m)| v - m).collect())
            .collect();
        let x_mat = Matrix::from_rows(&centered);
        let mut gram = x_mat.gram();
        // A tiny jitter keeps lambda=0 solvable for well-posed problems while
        // still surfacing truly singular systems.
        gram.add_diagonal(lambda.max(1e-12));

        let xty: Vec<f64> = (0..d)
            .map(|j| {
                centered
                    .iter()
                    .zip(ys)
                    .map(|(row, &y)| row[j] * (y - y_mean))
                    .sum()
            })
            .collect();

        let weights = cholesky_solve(&gram, &xty)?;
        let intercept = y_mean - weights.iter().zip(&x_mean).map(|(w, m)| w * m).sum::<f64>();
        Ok(Self {
            weights,
            intercept,
            lambda,
        })
    }

    /// Fits a single-feature ridge model without the matrix machinery.
    ///
    /// Bit-for-bit identical to `fit` called with one-element rows: every
    /// accumulation below mirrors the generic path's operation order for
    /// `d == 1` — gram and Xᵀy fold from `0.0` in sample order, the 1×1
    /// Cholesky divides by `sqrt(gram)` twice rather than once by `gram`,
    /// and the intercept dot product keeps the iterator sum's `0.0` seed.
    /// The hot viewport predictor calls this once per coordinate per
    /// segment, so it must not allocate per-sample feature rows.
    ///
    /// # Errors
    ///
    /// Same contract as [`RidgeRegression::fit`].
    pub fn fit_single(xs: &[f64], ys: &[f64], lambda: f64) -> Result<Self, RidgeError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(RidgeError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(RidgeError::ShapeMismatch);
        }
        if lambda < 0.0 {
            return Err(RidgeError::NegativeLambda);
        }
        let n = xs.len();
        let mut x_mean = 0.0f64;
        for v in xs {
            x_mean += v;
        }
        x_mean /= n as f64;
        let y_mean = ys.iter().sum::<f64>() / n as f64;

        let mut gram = 0.0f64;
        for v in xs {
            let c = v - x_mean;
            gram += c * c;
        }
        gram += lambda.max(1e-12);

        let xty = xs
            .iter()
            .zip(ys)
            .map(|(v, &y)| (v - x_mean) * (y - y_mean))
            .sum::<f64>();

        if gram <= 0.0 || !gram.is_finite() {
            return Err(RidgeError::Singular);
        }
        let l = gram.sqrt();
        let w = (xty / l) / l;
        let intercept = y_mean - (0.0f64 + w * x_mean);
        Ok(Self {
            weights: vec![w],
            intercept,
            lambda,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "feature dimensionality mismatch"
        );
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// The fitted weight vector (excluding the intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The regularisation strength the model was fitted with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dataset shapes mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 1.5 * i as f64 - 4.0).collect();
        let m = RidgeRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 1.5).abs() < 1e-6);
        assert!((m.intercept() + 4.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_plane() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                xs.push(vec![i as f64, j as f64]);
                ys.push(2.0 * i as f64 - 3.0 * j as f64 + 7.0);
            }
        }
        let m = RidgeRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-5);
        assert!((m.weights()[1] + 3.0).abs() < 1e-5);
        assert!((m.intercept() - 7.0).abs() < 1e-4);
    }

    #[test]
    fn large_lambda_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let loose = RidgeRegression::fit(&xs, &ys, 0.0).unwrap();
        let tight = RidgeRegression::fit(&xs, &ys, 1000.0).unwrap();
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn handles_collinear_features_with_lambda() {
        // Second feature is an exact copy of the first: singular without ridge.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let m = RidgeRegression::fit(&xs, &ys, 0.1).unwrap();
        // Weight mass splits across the duplicated features.
        let total: f64 = m.weights().iter().sum();
        assert!((total - 4.0).abs() < 0.1);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            RidgeRegression::fit(&[], &[], 0.1),
            Err(RidgeError::EmptyTrainingSet)
        );
        assert_eq!(
            RidgeRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.1),
            Err(RidgeError::ShapeMismatch)
        );
        assert_eq!(
            RidgeRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.1),
            Err(RidgeError::ShapeMismatch)
        );
        assert_eq!(
            RidgeRegression::fit(&[vec![1.0]], &[1.0], -1.0),
            Err(RidgeError::NegativeLambda)
        );
    }

    #[test]
    fn mse_zero_on_perfect_fit() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let m = RidgeRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!(m.mse(&xs, &ys) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn predict_wrong_dim_panics() {
        let m = RidgeRegression::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0], 0.1).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn fit_is_finite(
            n in 2usize..30,
            slope in -10.0f64..10.0,
            icpt in -10.0f64..10.0,
            lambda in 0.0f64..10.0,
        ) {
            let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let ys: Vec<f64> = (0..n).map(|i| slope * i as f64 + icpt).collect();
            let m = RidgeRegression::fit(&xs, &ys, lambda).unwrap();
            prop_assert!(m.weights()[0].is_finite());
            prop_assert!(m.intercept().is_finite());
        }

        #[test]
        fn fit_single_matches_generic_bit_for_bit(
            n in 2usize..40,
            seed in 0u64..5000,
            lambda in 0.0f64..10.0,
        ) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) * 200.0 - 100.0
            };
            let ts: Vec<f64> = (0..n).map(|_| next()).collect();
            let ys: Vec<f64> = (0..n).map(|_| next()).collect();
            let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t]).collect();
            let generic = RidgeRegression::fit(&rows, &ys, lambda);
            let single = RidgeRegression::fit_single(&ts, &ys, lambda);
            match (generic, single) {
                (Ok(g), Ok(s)) => {
                    prop_assert_eq!(g.weights()[0].to_bits(), s.weights()[0].to_bits());
                    prop_assert_eq!(g.intercept().to_bits(), s.intercept().to_bits());
                }
                (g, s) => prop_assert_eq!(g, s),
            }
        }

        #[test]
        fn more_lambda_never_increases_weight_norm(
            n in 3usize..20,
            slope in -5.0f64..5.0,
        ) {
            let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let ys: Vec<f64> = (0..n).map(|i| slope * i as f64).collect();
            let small = RidgeRegression::fit(&xs, &ys, 0.01).unwrap();
            let big = RidgeRegression::fit(&xs, &ys, 100.0).unwrap();
            prop_assert!(big.weights()[0].abs() <= small.weights()[0].abs() + 1e-9);
        }
    }
}
