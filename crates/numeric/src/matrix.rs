//! A dense, row-major matrix of `f64`.
//!
//! This is deliberately minimal: just what ridge regression and
//! Levenberg–Marquardt need (products, transposes, and normal-equation
//! assembly). It is not a general-purpose linear-algebra library.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, stored row-major.
///
/// # Example
///
/// ```
/// use ee360_numeric::matrix::Matrix;
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Builds a column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        assert!(!v.is_empty(), "vector must be non-empty");
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must match: {}×{} * {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                // lint:allow(float-compare, "intentional exact check: sparsity skip for exact zeros only")
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Gram matrix `selfᵀ · self` (always square and symmetric PSD).
    pub fn gram(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                out[(i, j)] = s;
                out[(j, i)] = s;
            }
        }
        out
    }

    /// Adds `lambda` to every diagonal entry in place (ridge regularisation).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(self.rows, self.cols, "diagonal shift needs a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += lambda;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Matrix::zeros(2, 5);
        let t = a.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 2);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]);
        let v = [3.0, 4.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!((g.frobenius_norm() - explicit.frobenius_norm()).abs() < 1e-12);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(2.0);
        for i in 0..3 {
            assert_eq!(a[(i, i)], 3.0);
        }
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        #[test]
        fn gram_is_symmetric(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| next()).collect())
                .collect();
            let m = Matrix::from_rows(&data);
            let g = m.gram();
            for i in 0..cols {
                for j in 0..cols {
                    prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn matmul_associative_with_identity(rows in 1usize..5, cols in 1usize..5) {
            let a = Matrix::zeros(rows, cols);
            let left = Matrix::identity(rows).matmul(&a);
            let right = a.matmul(&Matrix::identity(cols));
            prop_assert_eq!(left, right);
        }
    }
}
