//! Direct linear solvers: Cholesky for symmetric positive-definite systems
//! and partially pivoted LU for general square systems.
//!
//! Ridge regression's normal equations `(XᵀX + λI) w = Xᵀy` are SPD, so
//! [`cholesky_solve`] is the fast path; [`lu_solve`] is the robust fallback
//! used by the Levenberg–Marquardt step equation.

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is not square or does not match the right-hand side.
    ShapeMismatch,
    /// The matrix is singular (or, for Cholesky, not positive definite).
    Singular,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::ShapeMismatch => write!(f, "matrix and right-hand side shapes mismatch"),
            SolveError::Singular => write!(f, "matrix is singular or not positive definite"),
        }
    }
}

impl Error for SolveError {}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Returns [`SolveError::ShapeMismatch`] if `A` is not square or `b` has the
/// wrong length, and [`SolveError::Singular`] if `A` is not (numerically)
/// positive definite.
///
/// # Example
///
/// ```
/// use ee360_numeric::matrix::Matrix;
/// use ee360_numeric::solve::cholesky_solve;
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let x = cholesky_solve(&a, &[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok::<(), ee360_numeric::solve::SolveError>(())
/// ```
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    // Lower-triangular factor L with A = L Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(SolveError::Singular);
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Ok(x)
}

/// Solves `A x = b` for general square `A` via LU with partial pivoting.
///
/// # Errors
///
/// Returns [`SolveError::ShapeMismatch`] for shape problems and
/// [`SolveError::Singular`] when a pivot (after row exchange) is numerically
/// zero.
///
/// # Example
///
/// ```
/// use ee360_numeric::matrix::Matrix;
/// use ee360_numeric::solve::lu_solve;
///
/// // A non-symmetric system.
/// let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]);
/// let x = lu_solve(&a, &[4.0, 3.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), ee360_numeric::solve::SolveError>(())
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let mut lu: Vec<f64> = a.as_slice().to_vec();
    let mut x: Vec<f64> = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in this column.
        let mut pivot_row = col;
        let mut pivot_val = lu[col * n + col].abs();
        for r in (col + 1)..n {
            let v = lu[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-14 || !pivot_val.is_finite() {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                lu.swap(col * n + c, pivot_row * n + c);
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below the pivot.
        let pivot = lu[col * n + col];
        for r in (col + 1)..n {
            let factor = lu[r * n + col] / pivot;
            // lint:allow(float-compare, "intentional exact check: elimination skip for exact zeros only")
            if factor == 0.0 {
                continue;
            }
            lu[r * n + col] = 0.0;
            for c in (col + 1)..n {
                lu[r * n + c] -= factor * lu[col * n + c];
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut s = x[i];
        for c in (i + 1)..n {
            s -= lu[i * n + c] * x[c];
        }
        x[i] = s / lu[i * n + i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn cholesky_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = cholesky_solve(&a, &b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn cholesky_known_system() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let b = [9.0, 9.0, 7.0];
        let x = cholesky_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky_solve(&a, &[1.0, 1.0]), Err(SolveError::Singular));
    }

    #[test]
    fn cholesky_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(SolveError::ShapeMismatch)
        );
        let b = Matrix::identity(2);
        assert_eq!(cholesky_solve(&b, &[1.0]), Err(SolveError::ShapeMismatch));
    }

    #[test]
    fn lu_handles_zero_pivot_with_pivoting() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn lu_known_3x3() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let b = [8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn errors_display() {
        assert!(!SolveError::Singular.to_string().is_empty());
        assert!(!SolveError::ShapeMismatch.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn lu_solves_diagonally_dominant(
            n in 1usize..6, seed in 0u64..500
        ) {
            // Build a random diagonally dominant matrix (always nonsingular).
            let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let mut next = || {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let mut rows = Vec::new();
            for i in 0..n {
                let mut row: Vec<f64> = (0..n).map(|_| next()).collect();
                let off: f64 = row.iter().enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| v.abs())
                    .sum();
                row[i] = off + 1.0;
                rows.push(row);
            }
            let a = Matrix::from_rows(&rows);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = lu_solve(&a, &b).unwrap();
            prop_assert!(residual(&a, &x, &b) < 1e-8);
        }

        #[test]
        fn cholesky_solves_gram_plus_ridge(
            rows in 1usize..8, cols in 1usize..5, seed in 0u64..500
        ) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| next()).collect())
                .collect();
            let x_mat = Matrix::from_rows(&data);
            let mut g = x_mat.gram();
            g.add_diagonal(0.5); // ridge makes it strictly PD
            let b: Vec<f64> = (0..cols).map(|_| next()).collect();
            let sol = cholesky_solve(&g, &b).unwrap();
            prop_assert!(residual(&g, &sol, &b) < 1e-8);
        }

        #[test]
        fn lu_and_cholesky_agree_on_spd(
            n in 1usize..5, seed in 0u64..300
        ) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let data: Vec<Vec<f64>> = (0..n + 2)
                .map(|_| (0..n).map(|_| next()).collect())
                .collect();
            let x_mat = Matrix::from_rows(&data);
            let mut g = x_mat.gram();
            g.add_diagonal(1.0);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x1 = cholesky_solve(&g, &b).unwrap();
            let x2 = lu_solve(&g, &b).unwrap();
            for (a1, a2) in x1.iter().zip(&x2) {
                prop_assert!((a1 - a2).abs() < 1e-8);
            }
        }
    }
}
