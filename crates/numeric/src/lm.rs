//! Levenberg–Marquardt nonlinear least squares.
//!
//! The paper fits its logistic quality model (Eq. 3) with nonlinear
//! least-squares regression ("nlinfit in Matlab"). This module provides the
//! same capability: given a residual function `r(θ)` it minimises
//! `‖r(θ)‖²` with the damped Gauss–Newton iteration
//!
//! ```text
//! (JᵀJ + μ diag(JᵀJ)) δ = −Jᵀ r,   θ ← θ + δ
//! ```
//!
//! using a forward-difference Jacobian, with the damping factor `μ` adapted
//! multiplicatively on success/failure (Marquardt's scheme).

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;
use crate::solve::{lu_solve, SolveError};

/// Error returned by [`LevenbergMarquardt::minimize`].
#[derive(Debug, Clone, PartialEq)]
pub enum LmError {
    /// The residual function returned a vector of different length than on
    /// the first call, or an empty one.
    InconsistentResiduals,
    /// The initial parameter vector is empty.
    EmptyParameters,
    /// The damped normal equations became singular even at maximum damping.
    Singular,
    /// The residual function produced non-finite values at the initial point.
    NonFiniteResidual,
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::InconsistentResiduals => {
                write!(f, "residual vector length changed or is zero")
            }
            LmError::EmptyParameters => write!(f, "parameter vector is empty"),
            LmError::Singular => write!(f, "normal equations singular at maximum damping"),
            LmError::NonFiniteResidual => write!(f, "residuals are not finite at the start point"),
        }
    }
}

impl Error for LmError {}

impl From<SolveError> for LmError {
    fn from(_: SolveError) -> Self {
        LmError::Singular
    }
}

/// Convergence report returned by a successful minimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct LmReport {
    /// The optimised parameter vector.
    pub params: Vec<f64>,
    /// Final value of `‖r(θ)‖²`.
    pub cost: f64,
    /// Number of accepted iterations performed.
    pub iterations: usize,
    /// Whether the tolerance (rather than the iteration cap) stopped the run.
    pub converged: bool,
}

/// Configurable Levenberg–Marquardt minimiser.
///
/// # Example
///
/// Fit `y = a · exp(b x)` to noiseless data:
///
/// ```
/// use ee360_numeric::lm::LevenbergMarquardt;
///
/// let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (0.5 * x).exp()).collect();
/// let lm = LevenbergMarquardt::new();
/// let report = lm.minimize(&[1.0, 0.0], |theta| {
///     xs.iter()
///         .zip(&ys)
///         .map(|(x, y)| theta[0] * (theta[1] * x).exp() - y)
///         .collect()
/// })?;
/// assert!((report.params[0] - 2.0).abs() < 1e-4);
/// assert!((report.params[1] - 0.5).abs() < 1e-4);
/// # Ok::<(), ee360_numeric::lm::LmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevenbergMarquardt {
    max_iterations: usize,
    tolerance: f64,
    initial_damping: f64,
}

impl LevenbergMarquardt {
    /// Creates a minimiser with default settings (200 iterations, 1e-12
    /// cost-change tolerance, initial damping 1e-3).
    pub fn new() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-12,
            initial_damping: 1e-3,
        }
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the relative cost-change tolerance that declares convergence.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Minimises `‖residuals(θ)‖²` starting from `initial`.
    ///
    /// # Errors
    ///
    /// See [`LmError`]. The residual closure must return the same number of
    /// residuals on every call.
    pub fn minimize<F>(&self, initial: &[f64], residuals: F) -> Result<LmReport, LmError>
    where
        F: Fn(&[f64]) -> Vec<f64>,
    {
        if initial.is_empty() {
            return Err(LmError::EmptyParameters);
        }
        let mut theta = initial.to_vec();
        let mut r = residuals(&theta);
        if r.is_empty() {
            return Err(LmError::InconsistentResiduals);
        }
        if r.iter().any(|v| !v.is_finite()) {
            return Err(LmError::NonFiniteResidual);
        }
        let m = r.len();
        let n = theta.len();
        let mut cost: f64 = r.iter().map(|v| v * v).sum();
        let mut mu = self.initial_damping;
        let mut iterations = 0;
        let mut converged = false;

        'outer: for _ in 0..self.max_iterations {
            // Forward-difference Jacobian.
            let mut jac = Matrix::zeros(m, n);
            for j in 0..n {
                let h = 1e-7 * theta[j].abs().max(1e-7);
                let mut bumped = theta.clone();
                bumped[j] += h;
                let rb = residuals(&bumped);
                if rb.len() != m {
                    return Err(LmError::InconsistentResiduals);
                }
                for i in 0..m {
                    jac[(i, j)] = (rb[i] - r[i]) / h;
                }
            }
            let jtj = jac.gram();
            let jtr: Vec<f64> = (0..n)
                .map(|j| (0..m).map(|i| jac[(i, j)] * r[i]).sum::<f64>())
                .collect();

            // Gradient small ⇒ converged.
            if jtr.iter().map(|v| v.abs()).fold(0.0, f64::max) < 1e-14 {
                converged = true;
                break;
            }

            // Try increasing damping until a step reduces the cost.
            for _attempt in 0..30 {
                let mut damped = jtj.clone();
                for i in 0..n {
                    let d = jtj[(i, i)].max(1e-12);
                    damped[(i, i)] += mu * d;
                }
                let neg_jtr: Vec<f64> = jtr.iter().map(|v| -v).collect();
                let delta = match lu_solve(&damped, &neg_jtr) {
                    Ok(d) => d,
                    Err(_) => {
                        mu *= 10.0;
                        if mu > 1e12 {
                            return Err(LmError::Singular);
                        }
                        continue;
                    }
                };
                let candidate: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + d).collect();
                let rc = residuals(&candidate);
                if rc.len() != m {
                    return Err(LmError::InconsistentResiduals);
                }
                let new_cost: f64 = rc.iter().map(|v| v * v).sum();
                if new_cost.is_finite() && new_cost < cost {
                    let improvement = (cost - new_cost) / cost.max(1e-300);
                    theta = candidate;
                    r = rc;
                    cost = new_cost;
                    mu = (mu * 0.3).max(1e-12);
                    iterations += 1;
                    if improvement < self.tolerance {
                        converged = true;
                        break 'outer;
                    }
                    continue 'outer;
                }
                mu *= 10.0;
                if mu > 1e12 {
                    // Cannot improve any further: treat as converged.
                    converged = true;
                    break 'outer;
                }
            }
        }

        Ok(LmReport {
            params: theta,
            cost,
            iterations,
            converged,
        })
    }
}

impl Default for LevenbergMarquardt {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_model() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let lm = LevenbergMarquardt::new();
        let report = lm
            .minimize(&[0.0, 0.0], |t| {
                xs.iter()
                    .zip(&ys)
                    .map(|(x, y)| t[0] * x + t[1] - y)
                    .collect()
            })
            .unwrap();
        assert!((report.params[0] - 3.0).abs() < 1e-6);
        assert!((report.params[1] + 1.0).abs() < 1e-6);
        assert!(report.cost < 1e-10);
    }

    #[test]
    fn fits_logistic_curve() {
        // Same functional family as the paper's Eq. 3.
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let truth = |x: f64| 100.0 / (1.0 + (-(0.8 * x - 4.0)).exp());
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let lm = LevenbergMarquardt::new().with_max_iterations(500);
        let report = lm
            .minimize(&[0.5, -2.0], |t| {
                xs.iter()
                    .zip(&ys)
                    .map(|(&x, y)| 100.0 / (1.0 + (-(t[0] * x + t[1])).exp()) - y)
                    .collect()
            })
            .unwrap();
        assert!((report.params[0] - 0.8).abs() < 1e-4, "{:?}", report.params);
        assert!((report.params[1] + 4.0).abs() < 1e-3, "{:?}", report.params);
    }

    #[test]
    fn rosenbrock_as_least_squares() {
        // Classic: minimum at (1, 1).
        let lm = LevenbergMarquardt::new().with_max_iterations(2000);
        let report = lm
            .minimize(&[-1.2, 1.0], |t| {
                vec![10.0 * (t[1] - t[0] * t[0]), 1.0 - t[0]]
            })
            .unwrap();
        assert!((report.params[0] - 1.0).abs() < 1e-5, "{:?}", report.params);
        assert!((report.params[1] - 1.0).abs() < 1e-5, "{:?}", report.params);
    }

    #[test]
    fn already_optimal_converges_quickly() {
        let lm = LevenbergMarquardt::new();
        let report = lm.minimize(&[2.0], |t| vec![t[0] - 2.0]).unwrap();
        assert!(report.cost < 1e-20);
        assert!(report.converged);
    }

    #[test]
    fn empty_parameters_error() {
        let lm = LevenbergMarquardt::new();
        assert_eq!(
            lm.minimize(&[], |_| vec![0.0]).unwrap_err(),
            LmError::EmptyParameters
        );
    }

    #[test]
    fn empty_residuals_error() {
        let lm = LevenbergMarquardt::new();
        assert_eq!(
            lm.minimize(&[1.0], |_| vec![]).unwrap_err(),
            LmError::InconsistentResiduals
        );
    }

    #[test]
    fn non_finite_residual_error() {
        let lm = LevenbergMarquardt::new();
        assert_eq!(
            lm.minimize(&[1.0], |_| vec![f64::NAN]).unwrap_err(),
            LmError::NonFiniteResidual
        );
    }

    #[test]
    fn respects_iteration_cap() {
        let lm = LevenbergMarquardt::new().with_max_iterations(1);
        let report = lm
            .minimize(&[-1.2, 1.0], |t| {
                vec![10.0 * (t[1] - t[0] * t[0]), 1.0 - t[0]]
            })
            .unwrap();
        assert!(report.iterations <= 1);
    }

    #[test]
    fn noisy_fit_recovers_approximate_params() {
        // Deterministic "noise" from a simple LCG.
        let mut state = 42u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.05
        };
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0 + noise()).collect();
        let lm = LevenbergMarquardt::new();
        let report = lm
            .minimize(&[0.0, 0.0], |t| {
                xs.iter()
                    .zip(&ys)
                    .map(|(x, y)| t[0] * x + t[1] - y)
                    .collect()
            })
            .unwrap();
        assert!((report.params[0] - 2.0).abs() < 0.05);
        assert!((report.params[1] - 1.0).abs() < 0.05);
    }
}
