//! Small dense numeric library for the `ee360` workspace.
//!
//! The paper's pipeline needs a handful of numerical tools that have no
//! lightweight off-the-shelf Rust equivalent in an offline environment, so
//! this crate implements them from scratch:
//!
//! * [`matrix`] — a dense row-major [`matrix::Matrix`] with the usual
//!   products and transposes,
//! * [`solve`] — Cholesky (SPD) and partially pivoted LU solvers,
//! * [`ridge`] — ridge regression, used for viewport prediction
//!   (Section IV-B of the paper),
//! * [`lm`] — Levenberg–Marquardt nonlinear least squares, used to fit the
//!   logistic QoE model (Eq. 3 / Table II),
//! * [`stats`] — harmonic mean (the paper's bandwidth estimator), empirical
//!   CDFs, percentiles, and Pearson correlation.
//!
//! # Example
//!
//! ```
//! use ee360_numeric::ridge::RidgeRegression;
//!
//! // y = 2x + 1 with a tiny ridge penalty.
//! let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
//! let model = RidgeRegression::fit(&xs, &ys, 1e-9).unwrap();
//! let pred = model.predict(&[20.0]);
//! assert!((pred - 41.0).abs() < 1e-3);
//! ```

pub mod lm;
pub mod matrix;
pub mod ridge;
pub mod solve;
pub mod stats;

pub use lm::{LevenbergMarquardt, LmError, LmReport};
pub use matrix::Matrix;
pub use ridge::{RidgeError, RidgeRegression};
pub use solve::{cholesky_solve, lu_solve, SolveError};
pub use stats::{harmonic_mean, pearson_correlation, percentile, Ecdf};
