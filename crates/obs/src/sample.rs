//! Deterministic sampled tracing and tail exemplars.
//!
//! **Sampling** is a pure function of `(seed, session)`: a splitmix64
//! hash of the pair against an integer threshold derived from a
//! parts-per-million rate. No RNG stream is consumed, no state is
//! shared, so the sampled-session *set* is identical for every thread
//! count and shard layout — the determinism contract the fleet's
//! byte-identical replay tests pin.
//!
//! **Exemplars** answer "*which* sessions sat in the tail": always-on
//! worst-K capture (top-K by stall seconds, bottom-K by QoE) over
//! compact per-session snapshots. The K-best set under a strict total
//! order (metric by `total_cmp`, ties broken by unique session index)
//! is permutation-independent, so offering sessions in shard-completion
//! order or user order yields the same set — but the fleet folds in
//! user order anyway, like everything else. Exemplar state lives in the
//! shard fold (one bounded [`ExemplarSet`] per tail), not in the
//! per-session hot state, which is how it fits the O(100 B)/session
//! budget.

use ee360_support::json::{Json, ToJson};

/// splitmix64 finaliser — the standard 64-bit avalanche mix (Steele et
/// al.). Used as a stateless hash, not a stream: one evaluation per
/// `(seed, session)` pair.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// True when session `session` of a fleet seeded with `seed` keeps a
/// full `Detail` trace at sampling rate `rate_ppm` parts per million.
///
/// The decision hashes `(seed, session)` through [`splitmix64`] and
/// compares against `rate_ppm * (u64::MAX / 1e6)` — integer-only, so
/// the kept set is exact, platform-independent, and stable under any
/// shard layout. `rate_ppm >= 1_000_000` keeps everything.
#[must_use]
pub fn sampled(seed: u64, session: u64, rate_ppm: u32) -> bool {
    if rate_ppm == 0 {
        return false;
    }
    if rate_ppm >= 1_000_000 {
        return true;
    }
    let threshold = (u64::MAX / 1_000_000).wrapping_mul(u64::from(rate_ppm));
    splitmix64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(session),
    ) < threshold
}

/// Compact per-session snapshot captured for tail drill-down — the
/// whole point is that this is all an operator needs to decide whether
/// to re-run the session with full tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExemplarSummary {
    /// User-order session index within the fleet.
    pub session: u64,
    /// Total stall seconds.
    pub stall_sec: f64,
    /// Mean QoE over the session's segment slots.
    pub mean_qoe: f64,
    /// Total energy, millijoules.
    pub energy_mj: f64,
    /// Segments delivered.
    pub delivered: u32,
    /// Segments skipped.
    pub skipped: u32,
    /// Startup latency in seconds (negative when the session never
    /// delivered a segment).
    pub startup_sec: f64,
}

impl ToJson for ExemplarSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("session".to_owned(), Json::Int(self.session as i64)),
            ("stall_sec".to_owned(), Json::Num(self.stall_sec)),
            ("mean_qoe".to_owned(), Json::Num(self.mean_qoe)),
            ("energy_mj".to_owned(), Json::Num(self.energy_mj)),
            ("delivered".to_owned(), Json::Int(i64::from(self.delivered))),
            ("skipped".to_owned(), Json::Int(i64::from(self.skipped))),
            ("startup_sec".to_owned(), Json::Num(self.startup_sec)),
        ])
    }
}

/// Which tail an [`ExemplarSet`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tail {
    /// Keep the K *largest* metric values (worst stall).
    Top,
    /// Keep the K *smallest* metric values (worst QoE).
    Bottom,
}

/// A bounded worst-K set over `(metric, session)` keys with a strict
/// total order: metric by `f64::total_cmp`, ties by session index
/// (unique within a fleet), so membership is independent of offer
/// order. Memory is O(K) regardless of fleet size; offers are O(K)
/// worst-case but O(1) for the common below-threshold case.
#[derive(Debug, Clone, PartialEq)]
pub struct ExemplarSet {
    tail: Tail,
    k: usize,
    // Sorted worst-first (largest metric first for Top, smallest first
    // for Bottom) so `entries[k-1]` is always the eviction candidate.
    entries: Vec<(f64, ExemplarSummary)>,
}

impl ExemplarSet {
    /// A set keeping the `k` largest metric values.
    #[must_use]
    pub fn top(k: usize) -> Self {
        ExemplarSet {
            tail: Tail::Top,
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// A set keeping the `k` smallest metric values.
    #[must_use]
    pub fn bottom(k: usize) -> Self {
        ExemplarSet {
            tail: Tail::Bottom,
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Strictly-ordered "a is worse (more extreme) than b" for this
    /// tail; never returns equal for distinct sessions.
    fn worse(&self, a: &(f64, ExemplarSummary), b: &(f64, ExemplarSummary)) -> bool {
        let ord = match self.tail {
            Tail::Top => b.0.total_cmp(&a.0),
            Tail::Bottom => a.0.total_cmp(&b.0),
        };
        match ord {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1.session < b.1.session,
        }
    }

    /// Offers one session; keeps it only if it is among the K most
    /// extreme seen so far. Order of offers does not affect the final
    /// set or its ordering.
    pub fn offer(&mut self, metric: f64, summary: ExemplarSummary) {
        if self.k == 0 {
            return;
        }
        let cand = (metric, summary);
        if self.entries.len() == self.k {
            match self.entries.last() {
                Some(last) if self.worse(&cand, last) => {
                    self.entries.pop();
                }
                _ => return,
            }
        }
        let pos = self
            .entries
            .iter()
            .position(|e| self.worse(&cand, e))
            .unwrap_or(self.entries.len());
        // lint:allow(hot-path-alloc, "bounded: the set holds at most K entries (Vec::with_capacity(k) up front), inserts past capacity are impossible")
        self.entries.insert(pos, cand);
    }

    /// The kept exemplars, worst-first.
    #[must_use]
    pub fn entries(&self) -> &[(f64, ExemplarSummary)] {
        &self.entries
    }

    /// Number of kept exemplars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ToJson for ExemplarSet {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(metric, s)| {
                    let mut obj = match s.to_json() {
                        Json::Obj(fields) => fields,
                        other => vec![("summary".to_owned(), other)],
                    };
                    obj.insert(0, ("metric".to_owned(), Json::Num(*metric)));
                    Json::Obj(obj)
                })
                .collect(),
        )
    }
}

/// The fleet's exemplar capture: worst-K by stall time and bottom-K by
/// mean QoE. Lives in the fold, fed once per session with its final
/// summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplars {
    /// Top-K sessions by total stall seconds.
    pub worst_stall: ExemplarSet,
    /// Bottom-K sessions by mean QoE.
    pub worst_qoe: ExemplarSet,
}

impl Exemplars {
    /// Capture with `k` exemplars per tail.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Exemplars {
            worst_stall: ExemplarSet::top(k),
            worst_qoe: ExemplarSet::bottom(k),
        }
    }

    /// Offers one finished session to both tails.
    pub fn offer(&mut self, summary: ExemplarSummary) {
        self.worst_stall.offer(summary.stall_sec, summary);
        self.worst_qoe.offer(summary.mean_qoe, summary);
    }
}

impl ToJson for Exemplars {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("worst_stall".to_owned(), self.worst_stall.to_json()),
            ("worst_qoe".to_owned(), self.worst_qoe.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(session: u64, stall: f64, qoe: f64) -> ExemplarSummary {
        ExemplarSummary {
            session,
            stall_sec: stall,
            mean_qoe: qoe,
            energy_mj: 100.0,
            delivered: 10,
            skipped: 0,
            startup_sec: 0.5,
        }
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs of the canonical splitmix64 finaliser.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn sampling_rate_is_approximately_honoured() {
        let kept = (0..100_000u64)
            .filter(|s| sampled(2022, *s, 10_000))
            .count();
        // 1% of 100k = 1000 expected; splitmix64 is a good mixer, so
        // allow a generous band.
        assert!((600..1400).contains(&kept), "kept {kept} of 100000 at 1%");
        assert_eq!((0..1000u64).filter(|s| sampled(7, *s, 0)).count(), 0);
        assert_eq!(
            (0..1000u64).filter(|s| sampled(7, *s, 1_000_000)).count(),
            1000
        );
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_session() {
        for s in 0..512u64 {
            assert_eq!(sampled(42, s, 50_000), sampled(42, s, 50_000));
        }
        // Different seeds select different sets (overwhelmingly likely).
        let a: Vec<u64> = (0..4096).filter(|s| sampled(1, *s, 50_000)).collect();
        let b: Vec<u64> = (0..4096).filter(|s| sampled(2, *s, 50_000)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn exemplar_top_k_keeps_the_largest() {
        let mut set = ExemplarSet::top(3);
        for (i, stall) in [0.1, 5.0, 2.0, 9.0, 0.0, 7.5].iter().enumerate() {
            set.offer(*stall, summary(i as u64, *stall, 3.0));
        }
        let kept: Vec<f64> = set.entries().iter().map(|e| e.0).collect();
        assert_eq!(kept, vec![9.0, 7.5, 5.0]);
    }

    #[test]
    fn exemplar_bottom_k_keeps_the_smallest() {
        let mut set = ExemplarSet::bottom(2);
        for (i, qoe) in [3.0, -1.0, 2.0, 0.5].iter().enumerate() {
            set.offer(*qoe, summary(i as u64, 1.0, *qoe));
        }
        let kept: Vec<f64> = set.entries().iter().map(|e| e.0).collect();
        assert_eq!(kept, vec![-1.0, 0.5]);
    }

    #[test]
    fn exemplar_set_is_permutation_independent() {
        let items: Vec<(u64, f64)> = (0..64u64)
            .map(|i| (i, f64::from((i * 37 % 16) as u32)))
            .collect();
        let build = |order: &[usize]| {
            let mut set = ExemplarSet::top(5);
            for &ix in order {
                let (s, v) = items[ix];
                set.offer(v, summary(s, v, 1.0));
            }
            set
        };
        let forward: Vec<usize> = (0..items.len()).collect();
        let reverse: Vec<usize> = (0..items.len()).rev().collect();
        // A deterministic shuffle via splitmix64 keys.
        let mut shuffled = forward.clone();
        shuffled.sort_by_key(|&i| splitmix64(i as u64));
        let a = build(&forward);
        let b = build(&reverse);
        let c = build(&shuffled);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Ties (many duplicate metric values above) break by session index.
        let sessions: Vec<u64> = a.entries().iter().map(|e| e.1.session).collect();
        let mut sorted = sessions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sessions.len(), "sessions are unique");
    }

    #[test]
    fn exemplar_json_carries_metric_and_session() {
        let mut ex = Exemplars::new(2);
        ex.offer(summary(3, 4.0, 1.5));
        ex.offer(summary(9, 0.5, 3.5));
        let text = ee360_support::json::to_string(&ex.to_json()).expect("serialises");
        for key in [
            "worst_stall",
            "worst_qoe",
            "metric",
            "session",
            "startup_sec",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
