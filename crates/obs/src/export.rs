//! JSON/JSONL exporters for recorders.
//!
//! Two artifacts: a *report* (`results/obs_report.json`) carrying the
//! aggregate registry, span tree, and ring-buffer accounting, and a
//! *trace* (JSONL, one event object per line) for per-segment
//! archaeology. Both are pure functions of the recorder state, so a
//! same-seed run with profiling off re-exports byte-identical files.

use std::io;
use std::path::Path;

use ee360_support::json::{to_string_pretty, Json, ToJson};

use crate::record::Recorder;

/// Schema tag stamped into every report.
pub const REPORT_SCHEMA: &str = "ee360-obs-report-v1";

/// Builds the aggregate report for a recorder. Window-enabled
/// recorders additionally carry a `timeseries` section with the
/// per-window registries.
#[must_use]
pub fn report_json(rec: &Recorder) -> Json {
    let mut fields = vec![
        ("schema".to_owned(), Json::Str(REPORT_SCHEMA.to_owned())),
        (
            "level".to_owned(),
            Json::Str(crate::record::Record::level(rec).as_str().to_owned()),
        ),
        (
            "events_recorded".to_owned(),
            Json::Int(rec.events_len() as i64),
        ),
        ("events_dropped".to_owned(), Json::Int(rec.dropped() as i64)),
        ("spans".to_owned(), rec.span_tree_json()),
        ("metrics".to_owned(), rec.registry().to_json()),
    ];
    if let Some(windows) = rec.windows() {
        fields.push(("timeseries".to_owned(), windows.to_json()));
    }
    Json::Obj(fields)
}

fn json_io_err(e: ee360_support::json::JsonError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("obs export: {e}"))
}

/// Writes the pretty-printed aggregate report to `path`, creating
/// parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors and (unreachable in practice)
/// serializer failures as [`io::Error`].
pub fn write_report(path: impl AsRef<Path>, rec: &Recorder) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let text = to_string_pretty(&report_json(rec)).map_err(json_io_err)?;
    std::fs::write(path, text)
}

/// Writes the JSONL event trace to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors and serializer failures as
/// [`io::Error`].
pub fn write_trace(path: impl AsRef<Path>, rec: &Recorder) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let text = rec.trace_jsonl().map_err(json_io_err)?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Level};
    use crate::record::Record;

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new(Level::Detail);
        rec.span_open("session", 0.0);
        rec.record(Event::Stall {
            segment: 2,
            t_sec: 3.0,
            duration_sec: 0.5,
        });
        rec.count("resilience.retries", 4);
        rec.observe("session.stall_sec", 0.5);
        rec.span_close(9.0);
        rec
    }

    #[test]
    fn report_has_schema_and_required_sections() {
        let rec = sample_recorder();
        let report = report_json(&rec);
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        for key in [
            "level",
            "events_recorded",
            "events_dropped",
            "spans",
            "metrics",
        ] {
            assert!(report.get(key).is_some(), "missing {key}");
        }
        let text = to_string_pretty(&report).expect("serialises");
        ee360_support::json::parse(&text).expect("round-trips");
    }

    #[test]
    fn report_export_is_deterministic_for_equal_recorders() {
        let a = to_string_pretty(&report_json(&sample_recorder())).expect("a");
        let b = to_string_pretty(&report_json(&sample_recorder())).expect("b");
        assert_eq!(a, b);
    }
}
