//! Logical-time windowed metrics: fixed-width windows over *simulation*
//! time, folded in user-index order so a fleet's time-resolved series is
//! a pure function of the seed — independent of thread count, shard
//! boundaries, and completion order.
//!
//! Two complementary shapes live here:
//!
//! * [`TimeSeries`] — a generic window → [`Registry`] map for the traced
//!   paper-session paths. Emission sites that know the simulation clock
//!   call [`Record::count_at`]/[`Record::observe_at`](crate::Record)
//!   and the recorder buckets the same value into the same-named
//!   per-window registry entry (mirror-don't-model: the whole-run
//!   registry sees the identical observation, so per-window counters
//!   partition the whole-run counters exactly).
//! * [`SessionWindows`] + [`FleetSeries`] — the scale-fleet pipeline.
//!   Each session stamps a **cumulative** snapshot of its own summary
//!   accumulators ([`WindowCums`], bit-copies of the very `+=` chains
//!   the fleet report folds) into at most one [`WindowCell`] per
//!   window; the fold then walks sessions in user-index order and
//!   accumulates, per window, each session's carried-forward cumulative
//!   value. Because the last window's accumulation is exactly the
//!   sequence `total += session_final` in user order — the same chain
//!   `run_scale_fleet` uses for its report — the final cumulative row
//!   reconciles **bit-exactly** (f64) and **integer-exactly** (u64)
//!   with the whole-run registry, while per-window deltas (differences
//!   of adjacent cumulative rows) give the plottable series.
//!
//! Windows are cumulative rather than per-window sums precisely because
//! f64 addition is non-associative: regrouping per-booking values into
//! windows and re-summing cannot reproduce the whole-run total bit for
//! bit, but carrying the *same running accumulator* can, by copy.

use std::collections::BTreeMap;

use ee360_support::json::{Json, ToJson};

use crate::metrics::{Histogram, Registry};

/// Schema tag stamped into every exported fleet timeseries artifact.
pub const TIMESERIES_SCHEMA: &str = "ee360.timeseries.v1";

/// Hard cap on materialised windows: bookings past this index clamp
/// into the last window, so a pathological session cannot make the
/// series (or the per-session cell vectors) unbounded.
pub const MAX_WINDOWS: usize = 4096;

/// O(1) bucket index of simulation time `t_sec` under `window_sec`-wide
/// windows. Degenerate widths and non-positive times land in window 0;
/// times past [`MAX_WINDOWS`] clamp into the last window.
#[must_use]
pub fn window_index(t_sec: f64, window_sec: f64) -> u32 {
    if window_sec <= 0.0 || t_sec <= 0.0 || !t_sec.is_finite() {
        return 0;
    }
    // Saturating float->int cast; both operands are finite positives, so
    // the quotient is deterministic on every platform.
    let idx = (t_sec / window_sec) as u64;
    idx.min(MAX_WINDOWS as u64 - 1) as u32
}

/// Telemetry switches threaded through the fleet engines. `Copy` so the
/// fleet config stays `Copy`; everything defaults to off, which keeps
/// every existing path byte-identical to the pre-telemetry build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Window width in simulation seconds; `<= 0` disables windowing.
    pub window_sec: f64,
    /// Sessions keeping a full `Detail` trace, in parts per million of
    /// the session-index space (deterministic splitmix64 hash of
    /// `(seed, session)`); 0 disables sampled tracing.
    pub sample_ppm: u32,
    /// Worst-K exemplar capacity per tail (top-K stall, bottom-K QoE);
    /// 0 disables exemplar capture.
    pub exemplar_k: u32,
}

impl TelemetryConfig {
    /// Everything off — the default for existing fleet callers.
    #[must_use]
    pub const fn off() -> Self {
        TelemetryConfig {
            window_sec: 0.0,
            sample_ppm: 0,
            exemplar_k: 0,
        }
    }

    /// The standard smoke/CI shape: 5 s windows, 1% sampled traces,
    /// 8 exemplars per tail.
    #[must_use]
    pub const fn standard() -> Self {
        TelemetryConfig {
            window_sec: 5.0,
            sample_ppm: 10_000,
            exemplar_k: 8,
        }
    }

    /// True when any subsystem is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.windows_enabled() || self.sampling_enabled() || self.exemplars_enabled()
    }

    /// True when windowed series are collected.
    #[must_use]
    pub fn windows_enabled(&self) -> bool {
        self.window_sec > 0.0
    }

    /// True when sampled tracing is on.
    #[must_use]
    pub fn sampling_enabled(&self) -> bool {
        self.sample_ppm > 0
    }

    /// True when exemplar capture is on.
    #[must_use]
    pub fn exemplars_enabled(&self) -> bool {
        self.exemplar_k > 0
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// Cumulative per-session snapshot at the session's latest booking
/// inside one window: bit-copies of the session's own running summary
/// accumulators, never re-derived values.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowCums {
    /// Running stall seconds (the summary's `+=` chain, copied).
    pub stall_sec: f64,
    /// Running QoE sum.
    pub qoe_sum: f64,
    /// Running energy, millijoules.
    pub energy_mj: f64,
    /// Running bits moved (delivered + wasted).
    pub bits: f64,
    /// Segment slots consumed so far.
    pub segments: u32,
    /// Segments delivered so far.
    pub delivered: u32,
    /// Segments skipped so far.
    pub skipped: u32,
    /// Replans where the robust bandwidth margin engaged (< 1.0) so far.
    pub margin_engaged: u32,
}

/// One window's cumulative snapshot for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowCell {
    /// Window index ([`window_index`] of the booking clock).
    pub window: u32,
    /// The session's cumulative accumulators at its last booking in
    /// this window.
    pub cums: WindowCums,
}

/// Inline cell capacity of [`SessionWindows`]: sized so a typical
/// session's whole window span lives in the driver struct with **zero
/// heap**. At fleet scale the earlier `Vec`-backed log cost one
/// malloc/free pair per session, which was the single largest telemetry
/// overhead; only sessions spanning more than this many windows spill
/// into the overflow `Vec`.
pub const INLINE_CELLS: usize = 7;

const EMPTY_CELL: WindowCell = WindowCell {
    window: 0,
    cums: WindowCums {
        stall_sec: 0.0,
        qoe_sum: 0.0,
        energy_mj: 0.0,
        bits: 0.0,
        segments: 0,
        delivered: 0,
        skipped: 0,
        margin_engaged: 0,
    },
};

/// The per-session window log: at most one [`WindowCell`] per window,
/// appended in nondecreasing window order (a session's clock only moves
/// forward). The first [`INLINE_CELLS`] cells are stored inline (no
/// heap); longer sessions spill into the overflow `Vec`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionWindows {
    len: u32,
    inline: [WindowCell; INLINE_CELLS],
    overflow: Vec<WindowCell>,
}

impl Default for SessionWindows {
    fn default() -> Self {
        SessionWindows {
            len: 0,
            inline: [EMPTY_CELL; INLINE_CELLS],
            overflow: Vec::new(),
        }
    }
}

impl SessionWindows {
    /// Records the session's cumulative state for `window`. Repeated
    /// stamps of the same window overwrite in place (the cell keeps the
    /// *latest* cumulative snapshot); a later window appends.
    pub fn stamp(&mut self, window: u32, cums: WindowCums) {
        let n = self.len as usize;
        if n > 0 {
            let last = if n <= INLINE_CELLS {
                self.inline.get_mut(n - 1)
            } else {
                self.overflow.get_mut(n - INLINE_CELLS - 1)
            };
            if let Some(last) = last {
                if last.window == window {
                    last.cums = cums;
                    return;
                }
            }
        }
        if let Some(cell) = self.inline.get_mut(n) {
            *cell = WindowCell { window, cums };
        } else {
            // lint:allow(hot-path-alloc, "rare spill: only sessions spanning more than INLINE_CELLS windows reach the overflow Vec, bounded by MAX_WINDOWS")
            self.overflow.push(WindowCell { window, cums });
        }
        self.len += 1;
    }

    /// The stamped cells in window order (inline first, then overflow).
    pub fn iter(&self) -> impl Iterator<Item = &WindowCell> {
        let n = (self.len as usize).min(INLINE_CELLS);
        self.inline
            .get(..n)
            .unwrap_or(&[])
            .iter()
            .chain(self.overflow.iter())
    }

    /// The cell at position `i` in stamp order.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&WindowCell> {
        if i >= self.len as usize {
            return None;
        }
        if i < INLINE_CELLS {
            self.inline.get(i)
        } else {
            self.overflow.get(i - INLINE_CELLS)
        }
    }

    /// Number of stamped cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when nothing was stamped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The last stamped window, if any.
    #[must_use]
    pub fn last_window(&self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        self.get(self.len as usize - 1).map(|c| c.window)
    }
}

/// One window's fleet-level accumulators. The scalar fields are
/// **cumulative at end-of-window**, summed over sessions in user-index
/// order; the histograms hold per-session *within-window* deltas for
/// tail statistics (their sums are display values, not reconciliation
/// surfaces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowAccum {
    /// Σ over sessions of cumulative stall seconds at end of window.
    pub stall_sec: f64,
    /// Σ cumulative QoE sum.
    pub qoe_sum: f64,
    /// Σ cumulative energy, millijoules.
    pub energy_mj: f64,
    /// Σ cumulative bits.
    pub bits: f64,
    /// Σ cumulative segment slots.
    pub segments: u64,
    /// Σ cumulative delivered segments.
    pub delivered: u64,
    /// Σ cumulative skipped segments.
    pub skipped: u64,
    /// Σ cumulative margin-engaged replans.
    pub margin_engaged: u64,
    /// Sessions that booked at least one slot within this window.
    pub active_sessions: u64,
    /// Per-session stall seconds added within this window (active
    /// sessions only).
    pub stall_hist: Histogram,
    /// Per-session mean QoE over the slots booked within this window.
    pub qoe_hist: Histogram,
    /// Startup latency of sessions whose first delivery landed in this
    /// window.
    pub startup_hist: Histogram,
}

/// Per-window fleet deltas derived from two adjacent cumulative rows —
/// the plottable series (stall per window, delivered bitrate per
/// window, …). u64 deltas are exact; f64 deltas are well-defined
/// display values (the *cumulative* rows are the bit-exact surface).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowDelta {
    /// Window index.
    pub window: u32,
    /// Window start, simulation seconds.
    pub t_start_sec: f64,
    /// Stall seconds booked fleet-wide within the window.
    pub stall_sec: f64,
    /// QoE sum booked within the window.
    pub qoe_sum: f64,
    /// Energy booked within the window, millijoules.
    pub energy_mj: f64,
    /// Bits moved within the window.
    pub bits: f64,
    /// Segment slots consumed within the window.
    pub segments: u64,
    /// Segments delivered within the window.
    pub delivered: u64,
    /// Segments skipped within the window.
    pub skipped: u64,
    /// Margin-engaged replans within the window.
    pub margin_engaged: u64,
    /// Sessions that booked within the window.
    pub active_sessions: u64,
}

/// The fleet-level windowed series: a dense vector of [`WindowAccum`]s
/// folded session by session in user-index order via [`fold_session`]
/// (carry-forward semantics — a session contributes its latest
/// cumulative snapshot to every later window, its final totals to the
/// last).
///
/// [`fold_session`]: FleetSeries::fold_session
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSeries {
    window_sec: f64,
    accums: Vec<WindowAccum>,
}

impl FleetSeries {
    /// An empty series of `n_windows` dense windows of `window_sec`
    /// width (clamped to [`MAX_WINDOWS`]).
    #[must_use]
    pub fn new(window_sec: f64, n_windows: usize) -> Self {
        let n = n_windows.clamp(1, MAX_WINDOWS);
        FleetSeries {
            window_sec,
            accums: vec![WindowAccum::default(); n],
        }
    }

    /// Window width in simulation seconds.
    #[must_use]
    pub fn window_sec(&self) -> f64 {
        self.window_sec
    }

    /// Number of dense windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accums.len()
    }

    /// True when the series holds no windows (never: `new` clamps to 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accums.is_empty()
    }

    /// The dense cumulative rows.
    #[must_use]
    pub fn windows(&self) -> &[WindowAccum] {
        &self.accums
    }

    /// The final cumulative row — the reconciliation surface: its f64
    /// fields are the exact `+=` chain over per-session finals in user
    /// order, its u64 fields the exact counter totals.
    #[must_use]
    pub fn final_row(&self) -> Option<&WindowAccum> {
        self.accums.last()
    }

    /// Folds one session's window log into the series. **Must** be
    /// called in user-index order across the whole fleet: the per-window
    /// scalar chains are `+=` sequences whose order is the determinism
    /// contract. `startup_sec` is the session's startup latency (if it
    /// ever delivered), observed into the window of its first delivery.
    pub fn fold_session(&mut self, session: &SessionWindows, startup_sec: Option<f64>) {
        let mut cells = session.iter().peekable();
        let mut cur = WindowCums::default();
        let mut prev = WindowCums::default();
        let mut startup_done = false;
        for (w, acc) in self.accums.iter_mut().enumerate() {
            let mut active = false;
            while let Some(cell) = cells.peek() {
                if cell.window as usize > w {
                    break;
                }
                cur = cell.cums;
                active = true;
                cells.next();
            }
            acc.stall_sec += cur.stall_sec;
            acc.qoe_sum += cur.qoe_sum;
            acc.energy_mj += cur.energy_mj;
            acc.bits += cur.bits;
            acc.segments += u64::from(cur.segments);
            acc.delivered += u64::from(cur.delivered);
            acc.skipped += u64::from(cur.skipped);
            acc.margin_engaged += u64::from(cur.margin_engaged);
            if active {
                acc.active_sessions += 1;
                acc.stall_hist.observe(cur.stall_sec - prev.stall_sec);
                let slots = cur.segments.saturating_sub(prev.segments);
                if slots > 0 {
                    acc.qoe_hist
                        .observe((cur.qoe_sum - prev.qoe_sum) / f64::from(slots));
                }
                if !startup_done && cur.delivered > 0 {
                    startup_done = true;
                    if let Some(s) = startup_sec {
                        acc.startup_hist.observe(s);
                    }
                }
            }
            prev = cur;
        }
    }

    /// The per-window delta view (cumulative row minus its predecessor).
    #[must_use]
    pub fn delta(&self, w: usize) -> Option<WindowDelta> {
        let acc = self.accums.get(w)?;
        let zero = WindowAccum::default();
        let prev = if w == 0 {
            &zero
        } else {
            self.accums.get(w - 1)?
        };
        Some(WindowDelta {
            window: w as u32,
            t_start_sec: w as f64 * self.window_sec,
            stall_sec: acc.stall_sec - prev.stall_sec,
            qoe_sum: acc.qoe_sum - prev.qoe_sum,
            energy_mj: acc.energy_mj - prev.energy_mj,
            bits: acc.bits - prev.bits,
            segments: acc.segments - prev.segments,
            delivered: acc.delivered - prev.delivered,
            skipped: acc.skipped - prev.skipped,
            margin_engaged: acc.margin_engaged - prev.margin_engaged,
            active_sessions: acc.active_sessions,
        })
    }

    /// All per-window deltas in window order.
    #[must_use]
    pub fn deltas(&self) -> Vec<WindowDelta> {
        (0..self.accums.len())
            .filter_map(|w| self.delta(w))
            .collect()
    }
}

impl ToJson for FleetSeries {
    fn to_json(&self) -> Json {
        let windows: Vec<Json> = (0..self.accums.len())
            .filter_map(|w| {
                let d = self.delta(w)?;
                let acc = self.accums.get(w)?;
                Some(Json::Obj(vec![
                    ("window".to_owned(), Json::Int(i64::from(d.window))),
                    ("t_start_sec".to_owned(), Json::Num(d.t_start_sec)),
                    ("stall_sec".to_owned(), Json::Num(d.stall_sec)),
                    ("qoe_sum".to_owned(), Json::Num(d.qoe_sum)),
                    ("energy_mj".to_owned(), Json::Num(d.energy_mj)),
                    ("bits".to_owned(), Json::Num(d.bits)),
                    ("segments".to_owned(), Json::Int(d.segments as i64)),
                    ("delivered".to_owned(), Json::Int(d.delivered as i64)),
                    ("skipped".to_owned(), Json::Int(d.skipped as i64)),
                    (
                        "margin_engaged".to_owned(),
                        Json::Int(d.margin_engaged as i64),
                    ),
                    (
                        "active_sessions".to_owned(),
                        Json::Int(d.active_sessions as i64),
                    ),
                    ("cum_stall_sec".to_owned(), Json::Num(acc.stall_sec)),
                    ("cum_qoe_sum".to_owned(), Json::Num(acc.qoe_sum)),
                    ("cum_energy_mj".to_owned(), Json::Num(acc.energy_mj)),
                    ("cum_bits".to_owned(), Json::Num(acc.bits)),
                    ("stall_hist".to_owned(), acc.stall_hist.to_json()),
                    ("qoe_hist".to_owned(), acc.qoe_hist.to_json()),
                    ("startup_hist".to_owned(), acc.startup_hist.to_json()),
                ]))
            })
            .collect();
        Json::Obj(vec![
            ("window_sec".to_owned(), Json::Num(self.window_sec)),
            ("n_windows".to_owned(), Json::Int(self.accums.len() as i64)),
            ("windows".to_owned(), Json::Arr(windows)),
        ])
    }
}

/// A generic window → [`Registry`] series for the traced paper-session
/// paths: [`crate::Recorder`] owns one (opt-in) and routes
/// `count_at`/`observe_at` into both the whole-run registry and the
/// window's registry — same statement, same value — so per-window
/// counters partition the whole-run counters exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window_sec: f64,
    windows: BTreeMap<u32, Registry>,
}

impl TimeSeries {
    /// An empty series with `window_sec`-wide windows.
    #[must_use]
    pub fn new(window_sec: f64) -> Self {
        TimeSeries {
            window_sec,
            windows: BTreeMap::new(),
        }
    }

    /// Window width in simulation seconds.
    #[must_use]
    pub fn window_sec(&self) -> f64 {
        self.window_sec
    }

    fn registry_at(&mut self, t_sec: f64) -> &mut Registry {
        let w = window_index(t_sec, self.window_sec);
        // lint:allow(hot-path-alloc, "first touch of a window only: later emissions into the same window hit the BTreeMap entry in place")
        self.windows.entry(w).or_default()
    }

    /// Adds `n` to `name` in the window containing `t_sec`.
    pub fn inc_at(&mut self, t_sec: f64, name: &str, n: u64) {
        self.registry_at(t_sec).inc(name, n);
    }

    /// Observes `v` under `name` in the window containing `t_sec`.
    pub fn observe_at(&mut self, t_sec: f64, name: &str, v: f64) {
        self.registry_at(t_sec).observe(name, v);
    }

    /// The registry of one window, if it was ever touched.
    #[must_use]
    pub fn window(&self, w: u32) -> Option<&Registry> {
        self.windows.get(&w)
    }

    /// Touched windows in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Registry)> {
        self.windows.iter().map(|(w, r)| (*w, r))
    }

    /// Number of touched windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window was ever touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Sum of the named counter across all windows — integer-exact, so
    /// it reconciles with the whole-run registry by `==`.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.windows.values().map(|r| r.counter(name)).sum()
    }

    /// Sum of the named histogram's sample count across all windows.
    #[must_use]
    pub fn hist_count_total(&self, name: &str) -> u64 {
        self.windows
            .values()
            .filter_map(|r| r.histogram(name))
            .map(Histogram::count)
            .sum()
    }

    /// Folds another series into this one (per-window registry merge).
    /// Callers merge in user-index order after fan-outs, exactly like
    /// the whole-run registry merge.
    pub fn merge(&mut self, other: &TimeSeries) {
        for (w, reg) in &other.windows {
            self.windows.entry(*w).or_default().merge(reg);
        }
    }
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> Json {
        let windows: Vec<Json> = self
            .windows
            .iter()
            .map(|(w, reg)| {
                Json::Obj(vec![
                    ("window".to_owned(), Json::Int(i64::from(*w))),
                    (
                        "t_start_sec".to_owned(),
                        Json::Num(f64::from(*w) * self.window_sec),
                    ),
                    ("metrics".to_owned(), reg.to_json()),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("window_sec".to_owned(), Json::Num(self.window_sec)),
            ("windows".to_owned(), Json::Arr(windows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_index_buckets_and_clamps() {
        assert_eq!(window_index(0.0, 5.0), 0);
        assert_eq!(window_index(4.999, 5.0), 0);
        assert_eq!(window_index(5.0, 5.0), 1);
        assert_eq!(window_index(17.3, 5.0), 3);
        assert_eq!(window_index(-1.0, 5.0), 0);
        assert_eq!(window_index(1.0, 0.0), 0);
        assert_eq!(
            window_index(1e12, 5.0),
            (MAX_WINDOWS - 1) as u32,
            "far future clamps into the last window"
        );
    }

    #[test]
    fn session_windows_overwrite_in_place_and_append() {
        let mut sw = SessionWindows::default();
        let mut cums = WindowCums::default();
        cums.segments = 1;
        sw.stamp(0, cums);
        cums.segments = 2;
        sw.stamp(0, cums);
        cums.segments = 3;
        sw.stamp(2, cums);
        assert_eq!(sw.len(), 2);
        assert_eq!(sw.get(0).unwrap().window, 0);
        assert_eq!(
            sw.get(0).unwrap().cums.segments,
            2,
            "same window overwrites"
        );
        assert_eq!(sw.last_window(), Some(2));
    }

    #[test]
    fn session_windows_spill_past_inline_capacity() {
        let mut sw = SessionWindows::default();
        for w in 0..(INLINE_CELLS as u32 + 3) {
            let cums = WindowCums {
                segments: w + 1,
                ..WindowCums::default()
            };
            sw.stamp(w, cums);
        }
        assert_eq!(sw.len(), INLINE_CELLS + 3);
        assert_eq!(sw.last_window(), Some(INLINE_CELLS as u32 + 2));
        let windows: Vec<u32> = sw.iter().map(|c| c.window).collect();
        let expected: Vec<u32> = (0..(INLINE_CELLS as u32 + 3)).collect();
        assert_eq!(
            windows, expected,
            "iter chains inline then overflow in order"
        );
        // Overwrite-in-place still works once spilled.
        let cums = WindowCums {
            segments: 99,
            ..WindowCums::default()
        };
        sw.stamp(INLINE_CELLS as u32 + 2, cums);
        assert_eq!(sw.len(), INLINE_CELLS + 3);
        assert_eq!(sw.get(INLINE_CELLS + 2).unwrap().cums.segments, 99);
    }

    #[test]
    fn fold_carries_forward_and_final_row_matches_user_order_chain() {
        // Two sessions; session 0 books in windows 0 and 1, session 1
        // only in window 0. The final row must equal the user-order
        // chain over final cums.
        let mut s0 = SessionWindows::default();
        s0.stamp(
            0,
            WindowCums {
                stall_sec: 0.25,
                segments: 1,
                delivered: 1,
                ..WindowCums::default()
            },
        );
        s0.stamp(
            1,
            WindowCums {
                stall_sec: 0.75,
                segments: 3,
                delivered: 3,
                ..WindowCums::default()
            },
        );
        let mut s1 = SessionWindows::default();
        s1.stamp(
            0,
            WindowCums {
                stall_sec: 0.1,
                segments: 2,
                delivered: 1,
                skipped: 1,
                ..WindowCums::default()
            },
        );
        let mut series = FleetSeries::new(5.0, 3);
        series.fold_session(&s0, Some(0.4));
        series.fold_session(&s1, Some(1.2));
        let last = series.final_row().expect("rows");
        assert_eq!(last.segments, 5);
        assert_eq!(last.delivered, 4);
        assert_eq!(last.skipped, 1);
        let expected = {
            let mut t = 0.0f64;
            t += 0.75;
            t += 0.1;
            t
        };
        assert_eq!(last.stall_sec.to_bits(), expected.to_bits());
        // Window 1 delta: only session 0 moved (0.75 - 0.25 stall, 2 slots).
        let d1 = series.delta(1).expect("delta");
        assert_eq!(d1.segments, 2);
        assert_eq!(d1.active_sessions, 1);
        assert!((d1.stall_sec - 0.5).abs() < 1e-12);
        // Window 2: pure carry-forward — no deltas, no active sessions.
        let d2 = series.delta(2).expect("delta");
        assert_eq!(d2.segments, 0);
        assert_eq!(d2.active_sessions, 0);
        assert_eq!(d2.stall_sec, 0.0);
        // Startup landed in each session's first delivery window.
        let w0 = series.windows().first().expect("w0");
        assert_eq!(w0.startup_hist.count(), 2);
    }

    #[test]
    fn fold_order_is_the_determinism_contract() {
        // Folding the same sessions in the same order twice gives
        // bit-identical rows (the carry-forward loop is pure).
        let mut a = SessionWindows::default();
        a.stamp(
            0,
            WindowCums {
                stall_sec: 0.1 + 0.2, // deliberately non-representable
                ..WindowCums::default()
            },
        );
        let mut b = SessionWindows::default();
        b.stamp(
            1,
            WindowCums {
                stall_sec: 0.3,
                ..WindowCums::default()
            },
        );
        let run = || {
            let mut s = FleetSeries::new(1.0, 2);
            s.fold_session(&a, None);
            s.fold_session(&b, None);
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn timeseries_partitions_counters_exactly() {
        let mut ts = TimeSeries::new(5.0);
        ts.inc_at(1.0, "session.stalls", 2);
        ts.inc_at(6.0, "session.stalls", 3);
        ts.inc_at(12.0, "session.stalls", 5);
        ts.observe_at(1.0, "session.stall_sec", 0.5);
        ts.observe_at(12.0, "session.stall_sec", 0.25);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.counter_total("session.stalls"), 10);
        assert_eq!(ts.hist_count_total("session.stall_sec"), 2);
        assert_eq!(ts.window(1).map(|r| r.counter("session.stalls")), Some(3));
    }

    #[test]
    fn timeseries_merge_accumulates_per_window() {
        let mut a = TimeSeries::new(5.0);
        a.inc_at(1.0, "x", 1);
        let mut b = TimeSeries::new(5.0);
        b.inc_at(1.0, "x", 2);
        b.inc_at(7.0, "x", 4);
        a.merge(&b);
        assert_eq!(a.counter_total("x"), 7);
        assert_eq!(a.window(0).map(|r| r.counter("x")), Some(3));
        assert_eq!(a.window(1).map(|r| r.counter("x")), Some(4));
    }

    #[test]
    fn json_export_carries_schema_surface() {
        let mut series = FleetSeries::new(5.0, 2);
        let mut sw = SessionWindows::default();
        sw.stamp(
            0,
            WindowCums {
                segments: 1,
                delivered: 1,
                ..WindowCums::default()
            },
        );
        series.fold_session(&sw, Some(0.2));
        let json = series.to_json();
        let text = ee360_support::json::to_string(&json).expect("serialises");
        for key in [
            "window_sec",
            "n_windows",
            "windows",
            "stall_hist",
            "cum_stall_sec",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        ee360_support::json::parse(&text).expect("round-trips");
    }
}
