//! Declarative service-level objectives evaluated over the windowed
//! fleet series, with burn-rate accounting.
//!
//! An objective is a threshold over a per-window statistic derived from
//! [`FleetSeries`] deltas (stall ratio, mean QoE, p99 startup). Each
//! window with activity gets a **burn rate** — how fast the window
//! consumes the objective's budget: `value / threshold` for ceiling
//! objectives, `threshold / value` for floor objectives, so `burn > 1`
//! always means "this window breached". The verdict is pass iff no
//! window breached; `max_burn`/`total_burn` rank how badly and how
//! persistently. Everything here is plain arithmetic over the
//! deterministic series, so verdicts are a pure function of the seed.

use ee360_support::json::{Json, ToJson};

use crate::timeseries::FleetSeries;

/// Burn rates are clamped here so a zero-valued floor window (e.g. mean
/// QoE of 0 against a positive floor) reports "catastrophic" without
/// producing infinities in the JSON artifact.
pub const BURN_CLAMP: f64 = 1000.0;

/// A per-window objective over the fleet series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Stall seconds per booked segment slot must stay ≤ the bound
    /// (slots are fixed-duration, so this is a rebuffer-ratio proxy).
    StallRatioMax(f64),
    /// Mean QoE over the window's booked slots must stay ≥ the floor.
    QoeFloorMin(f64),
    /// p99 startup latency (sessions whose first delivery landed in the
    /// window) must stay ≤ the bound, in seconds.
    StartupP99Max(f64),
}

impl Objective {
    /// The threshold value, regardless of direction.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        match self {
            Objective::StallRatioMax(x)
            | Objective::QoeFloorMin(x)
            | Objective::StartupP99Max(x) => *x,
        }
    }

    /// Stable machine name for reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Objective::StallRatioMax(_) => "stall_ratio_max",
            Objective::QoeFloorMin(_) => "qoe_floor_min",
            Objective::StartupP99Max(_) => "startup_p99_max",
        }
    }
}

/// A named objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Report name, e.g. `"stall-ratio"`.
    pub name: String,
    /// The objective and threshold.
    pub objective: Objective,
}

impl SloSpec {
    /// A named objective.
    #[must_use]
    pub fn new(name: &str, objective: Objective) -> Self {
        SloSpec {
            name: name.to_owned(),
            objective,
        }
    }
}

/// The standard report card: stall ratio ≤ 5%, QoE floor ≥ 1.0, p99
/// startup ≤ 4 s.
#[must_use]
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new("stall-ratio", Objective::StallRatioMax(0.05)),
        SloSpec::new("qoe-floor", Objective::QoeFloorMin(1.0)),
        SloSpec::new("startup-p99", Objective::StartupP99Max(4.0)),
    ]
}

/// One objective's evaluation over the whole series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloResult {
    /// The spec's name.
    pub name: String,
    /// Objective kind (see [`Objective::kind`]).
    pub kind: &'static str,
    /// The threshold.
    pub threshold: f64,
    /// Windows where the statistic was defined (activity present).
    pub windows_evaluated: u64,
    /// Windows whose burn rate exceeded 1.
    pub windows_breached: u64,
    /// Largest per-window burn rate (0 when nothing was evaluated).
    pub max_burn: f64,
    /// Sum of per-window burn rates — the budget consumed.
    pub total_burn: f64,
    /// Index of the worst window, if any was evaluated.
    pub worst_window: Option<u32>,
    /// Pass iff no window breached.
    pub pass: bool,
}

impl ToJson for SloResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("kind".to_owned(), Json::Str(self.kind.to_owned())),
            ("threshold".to_owned(), Json::Num(self.threshold)),
            (
                "windows_evaluated".to_owned(),
                Json::Int(self.windows_evaluated as i64),
            ),
            (
                "windows_breached".to_owned(),
                Json::Int(self.windows_breached as i64),
            ),
            ("max_burn".to_owned(), Json::Num(self.max_burn)),
            ("total_burn".to_owned(), Json::Num(self.total_burn)),
            (
                "worst_window".to_owned(),
                match self.worst_window {
                    Some(w) => Json::Int(i64::from(w)),
                    None => Json::Null,
                },
            ),
            (
                "verdict".to_owned(),
                Json::Str(if self.pass { "pass" } else { "fail" }.to_owned()),
            ),
        ])
    }
}

/// Burn rate for a ceiling objective (`value` must stay ≤ `max`).
fn burn_ceiling(value: f64, max: f64) -> f64 {
    if max <= 0.0 {
        return if value > 0.0 { BURN_CLAMP } else { 0.0 };
    }
    (value / max).clamp(0.0, BURN_CLAMP)
}

/// Burn rate for a floor objective (`value` must stay ≥ `min`).
fn burn_floor(value: f64, min: f64) -> f64 {
    if min <= 0.0 {
        return 0.0;
    }
    if value <= 0.0 {
        return BURN_CLAMP;
    }
    (min / value).clamp(0.0, BURN_CLAMP)
}

/// Evaluates one objective over every window of the series.
#[must_use]
pub fn evaluate(spec: &SloSpec, series: &FleetSeries) -> SloResult {
    let mut out = SloResult {
        name: spec.name.clone(),
        kind: spec.objective.kind(),
        threshold: spec.objective.threshold(),
        windows_evaluated: 0,
        windows_breached: 0,
        max_burn: 0.0,
        total_burn: 0.0,
        worst_window: None,
        pass: true,
    };
    for w in 0..series.len() {
        let Some(delta) = series.delta(w) else {
            continue;
        };
        let burn = match spec.objective {
            Objective::StallRatioMax(max) => {
                if delta.segments == 0 {
                    continue;
                }
                burn_ceiling(delta.stall_sec / delta.segments as f64, max)
            }
            Objective::QoeFloorMin(min) => {
                if delta.segments == 0 {
                    continue;
                }
                burn_floor(delta.qoe_sum / delta.segments as f64, min)
            }
            Objective::StartupP99Max(max) => {
                let hist = match series.windows().get(w) {
                    Some(acc) if acc.startup_hist.count() > 0 => &acc.startup_hist,
                    _ => continue,
                };
                burn_ceiling(hist.quantile(0.99), max)
            }
        };
        out.windows_evaluated += 1;
        out.total_burn += burn;
        if out.worst_window.is_none() || burn > out.max_burn {
            out.max_burn = burn;
            out.worst_window = Some(w as u32);
        }
        if burn > 1.0 {
            out.windows_breached += 1;
            out.pass = false;
        }
    }
    out
}

/// Evaluates a report card of objectives.
#[must_use]
pub fn evaluate_all(specs: &[SloSpec], series: &FleetSeries) -> Vec<SloResult> {
    specs.iter().map(|s| evaluate(s, series)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{SessionWindows, WindowCums};

    fn series_with(stalls: &[f64], qoes: &[f64], segments_per_window: u32) -> FleetSeries {
        // One synthetic session whose cumulative stall/qoe tracks the
        // requested per-window deltas.
        let mut sw = SessionWindows::default();
        let mut cums = WindowCums::default();
        for (w, (stall, qoe)) in stalls.iter().zip(qoes.iter()).enumerate() {
            cums.stall_sec += stall;
            cums.qoe_sum += qoe;
            cums.segments += segments_per_window;
            cums.delivered += segments_per_window;
            sw.stamp(w as u32, cums);
        }
        let mut series = FleetSeries::new(5.0, stalls.len().max(1));
        series.fold_session(&sw, Some(0.5));
        series
    }

    #[test]
    fn stall_ratio_breaches_only_on_bad_windows() {
        // 4 slots/window: ratios 0.025, 0.25, 0.0 — one breach at 5%.
        let series = series_with(&[0.1, 1.0, 0.0], &[8.0, 8.0, 8.0], 4);
        let res = evaluate(
            &SloSpec::new("stall-ratio", Objective::StallRatioMax(0.05)),
            &series,
        );
        assert_eq!(res.windows_evaluated, 3);
        assert_eq!(res.windows_breached, 1);
        assert_eq!(res.worst_window, Some(1));
        assert!(!res.pass);
        assert!(res.max_burn > 1.0);
    }

    #[test]
    fn qoe_floor_passes_when_every_window_clears() {
        let series = series_with(&[0.0, 0.0], &[8.0, 6.0], 4);
        let res = evaluate(&SloSpec::new("qoe", Objective::QoeFloorMin(1.0)), &series);
        assert_eq!(res.windows_evaluated, 2);
        assert_eq!(res.windows_breached, 0);
        assert!(res.pass);
        assert!(res.max_burn <= 1.0);
    }

    #[test]
    fn qoe_floor_clamps_zero_value_windows() {
        let series = series_with(&[0.0], &[0.0], 4);
        let res = evaluate(&SloSpec::new("qoe", Objective::QoeFloorMin(1.0)), &series);
        assert_eq!(res.windows_breached, 1);
        assert_eq!(res.max_burn, BURN_CLAMP);
        assert!(!res.pass);
    }

    #[test]
    fn startup_p99_skips_windows_without_startups() {
        let series = series_with(&[0.0, 0.0], &[4.0, 4.0], 2);
        // Only window 0 saw a first delivery (startup 0.5 s).
        let res = evaluate(
            &SloSpec::new("startup", Objective::StartupP99Max(4.0)),
            &series,
        );
        assert_eq!(res.windows_evaluated, 1);
        assert!(res.pass);
    }

    #[test]
    fn report_card_serialises_with_verdicts() {
        let series = series_with(&[0.1], &[4.0], 4);
        let results = evaluate_all(&default_slos(), &series);
        assert_eq!(results.len(), 3);
        let json = Json::Arr(results.iter().map(ToJson::to_json).collect());
        let text = ee360_support::json::to_string(&json).expect("serialises");
        for key in [
            "verdict",
            "max_burn",
            "total_burn",
            "windows_breached",
            "worst_window",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
