//! Typed trace events and verbosity levels.
//!
//! Every event is keyed on *logical* simulation time — a segment index
//! plus the simulator clock in seconds — never on wall-clock time, so a
//! serialized trace is a pure function of the seed and the replay policy
//! stays byte-identical. Wall-clock measurement lives exclusively in
//! [`crate::profile`] and is opt-in.

use ee360_support::json::{Json, ToJson};

/// Verbosity threshold for a recorder. Events carry an intrinsic level
/// ([`Event::level`]) and are kept only when `event.level() <=
/// recorder.level()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing (the [`crate::record::NoopRecorder`] contract).
    Off,
    /// Per-segment decisions and incidents: plans, stalls, skips,
    /// abandons, decoder switches, energy samples.
    Summary,
    /// Everything, including per-attempt download outcomes, retries,
    /// and buffer occupancy samples.
    Detail,
}

impl Level {
    /// Stable string form used in exported reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Detail => "detail",
        }
    }
}

/// A structured trace event emitted by an instrumented pipeline stage.
///
/// Field conventions: `segment` is the media segment index the event
/// concerns, `t_sec` is the simulation clock when it happened, byte
/// quantities are in bits (matching the rest of the workspace) and
/// energies in millijoules.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The ABR controller produced a plan for a segment.
    SolverPlan {
        segment: usize,
        t_sec: f64,
        quality: usize,
        fps: f64,
        bits: f64,
        /// Why this plan was produced: `"mpc"`, `"fallback_no_ptile"`,
        /// `"baseline"`, or `"degraded"` (abandon-ladder replan).
        cause: &'static str,
        /// Memo hits the solver scored while producing this plan.
        memo_hits: u64,
        /// Memo misses (full DP solves) while producing this plan.
        memo_misses: u64,
        /// DP states expanded while producing this plan.
        states_expanded: u64,
    },
    /// One download attempt finished (delivered or failed).
    DownloadAttempt {
        segment: usize,
        attempt: usize,
        t_sec: f64,
        /// Degradation-ladder rung the attempt was fetched at.
        rung: usize,
        /// `"delivered"`, `"lost"`, `"corrupt"`, or `"abandoned"`.
        outcome: &'static str,
        bits: f64,
        elapsed_sec: f64,
        /// Seconds left until the segment deadline when the attempt
        /// ended; negative when the deadline had already passed.
        deadline_margin_sec: f64,
    },
    /// The pipeline is backing off before another attempt.
    Retry {
        segment: usize,
        attempt: usize,
        t_sec: f64,
        backoff_sec: f64,
    },
    /// An attempt was abandoned mid-flight and the ladder stepped down.
    Abandon {
        segment: usize,
        attempt: usize,
        t_sec: f64,
        rung: usize,
        wasted_bits: f64,
    },
    /// Playback stalled (rebuffering) while waiting for a segment.
    Stall {
        segment: usize,
        t_sec: f64,
        duration_sec: f64,
    },
    /// A segment was skipped after its retry deadline expired.
    Skip {
        segment: usize,
        t_sec: f64,
        blackout_sec: f64,
        attempts: usize,
    },
    /// The decode pipeline changed scheme between segments.
    DecoderSwitch {
        segment: usize,
        t_sec: f64,
        from: String,
        to: String,
    },
    /// Per-segment energy breakdown (Eq. 1 terms).
    EnergySample {
        segment: usize,
        transmission_mj: f64,
        decode_mj: f64,
        render_mj: f64,
        total_mj: f64,
    },
    /// Playback-buffer occupancy right after a segment was enqueued.
    BufferSample {
        segment: usize,
        t_sec: f64,
        level_sec: f64,
    },
}

impl Event {
    /// Stable type tag used as the `"type"` field of the JSON form.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolverPlan { .. } => "solver_plan",
            Event::DownloadAttempt { .. } => "download_attempt",
            Event::Retry { .. } => "retry",
            Event::Abandon { .. } => "abandon",
            Event::Stall { .. } => "stall",
            Event::Skip { .. } => "skip",
            Event::DecoderSwitch { .. } => "decoder_switch",
            Event::EnergySample { .. } => "energy_sample",
            Event::BufferSample { .. } => "buffer_sample",
        }
    }

    /// The verbosity level at which this event starts being recorded.
    #[must_use]
    pub fn level(&self) -> Level {
        match self {
            Event::DownloadAttempt { .. } | Event::Retry { .. } | Event::BufferSample { .. } => {
                Level::Detail
            }
            _ => Level::Summary,
        }
    }

    /// The segment index the event concerns.
    #[must_use]
    pub fn segment(&self) -> usize {
        match self {
            Event::SolverPlan { segment, .. }
            | Event::DownloadAttempt { segment, .. }
            | Event::Retry { segment, .. }
            | Event::Abandon { segment, .. }
            | Event::Stall { segment, .. }
            | Event::Skip { segment, .. }
            | Event::DecoderSwitch { segment, .. }
            | Event::EnergySample { segment, .. }
            | Event::BufferSample { segment, .. } => *segment,
        }
    }
}

fn push(fields: &mut Vec<(String, Json)>, name: &str, v: Json) {
    fields.push((name.to_owned(), v));
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut f: Vec<(String, Json)> = Vec::with_capacity(10);
        push(&mut f, "type", Json::Str(self.kind().to_owned()));
        match self {
            Event::SolverPlan {
                segment,
                t_sec,
                quality,
                fps,
                bits,
                cause,
                memo_hits,
                memo_misses,
                states_expanded,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "quality", Json::Int(*quality as i64));
                push(&mut f, "fps", Json::Num(*fps));
                push(&mut f, "bits", Json::Num(*bits));
                push(&mut f, "cause", Json::Str((*cause).to_owned()));
                push(&mut f, "memo_hits", Json::Int(*memo_hits as i64));
                push(&mut f, "memo_misses", Json::Int(*memo_misses as i64));
                push(
                    &mut f,
                    "states_expanded",
                    Json::Int(*states_expanded as i64),
                );
            }
            Event::DownloadAttempt {
                segment,
                attempt,
                t_sec,
                rung,
                outcome,
                bits,
                elapsed_sec,
                deadline_margin_sec,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "attempt", Json::Int(*attempt as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "rung", Json::Int(*rung as i64));
                push(&mut f, "outcome", Json::Str((*outcome).to_owned()));
                push(&mut f, "bits", Json::Num(*bits));
                push(&mut f, "elapsed_sec", Json::Num(*elapsed_sec));
                push(
                    &mut f,
                    "deadline_margin_sec",
                    Json::Num(*deadline_margin_sec),
                );
            }
            Event::Retry {
                segment,
                attempt,
                t_sec,
                backoff_sec,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "attempt", Json::Int(*attempt as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "backoff_sec", Json::Num(*backoff_sec));
            }
            Event::Abandon {
                segment,
                attempt,
                t_sec,
                rung,
                wasted_bits,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "attempt", Json::Int(*attempt as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "rung", Json::Int(*rung as i64));
                push(&mut f, "wasted_bits", Json::Num(*wasted_bits));
            }
            Event::Stall {
                segment,
                t_sec,
                duration_sec,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "duration_sec", Json::Num(*duration_sec));
            }
            Event::Skip {
                segment,
                t_sec,
                blackout_sec,
                attempts,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "blackout_sec", Json::Num(*blackout_sec));
                push(&mut f, "attempts", Json::Int(*attempts as i64));
            }
            Event::DecoderSwitch {
                segment,
                t_sec,
                from,
                to,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "from", Json::Str(from.clone()));
                push(&mut f, "to", Json::Str(to.clone()));
            }
            Event::EnergySample {
                segment,
                transmission_mj,
                decode_mj,
                render_mj,
                total_mj,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "transmission_mj", Json::Num(*transmission_mj));
                push(&mut f, "decode_mj", Json::Num(*decode_mj));
                push(&mut f, "render_mj", Json::Num(*render_mj));
                push(&mut f, "total_mj", Json::Num(*total_mj));
            }
            Event::BufferSample {
                segment,
                t_sec,
                level_sec,
            } => {
                push(&mut f, "segment", Json::Int(*segment as i64));
                push(&mut f, "t_sec", Json::Num(*t_sec));
                push(&mut f, "level_sec", Json::Num(*level_sec));
            }
        }
        Json::Obj(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::json::to_string;

    #[test]
    fn level_ordering_matches_filtering_semantics() {
        assert!(Level::Off < Level::Summary);
        assert!(Level::Summary < Level::Detail);
    }

    #[test]
    fn event_levels_partition_the_taxonomy() {
        let detail = Event::Retry {
            segment: 3,
            attempt: 1,
            t_sec: 1.5,
            backoff_sec: 0.25,
        };
        let summary = Event::Stall {
            segment: 3,
            t_sec: 1.5,
            duration_sec: 0.4,
        };
        assert_eq!(detail.level(), Level::Detail);
        assert_eq!(summary.level(), Level::Summary);
        assert_eq!(detail.segment(), 3);
    }

    #[test]
    fn json_form_is_tagged_and_ordered() {
        let e = Event::Skip {
            segment: 7,
            t_sec: 12.0,
            blackout_sec: 3.5,
            attempts: 4,
        };
        let s = to_string(&e.to_json()).expect("serialises");
        assert!(s.starts_with("{\"type\":\"skip\""), "{s}");
        assert!(s.contains("\"segment\":7"));
        assert!(s.contains("\"blackout_sec\":3.5"));
    }
}
