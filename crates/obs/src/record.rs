//! The recording API: the [`Record`] trait, the zero-cost
//! [`NoopRecorder`], and the live [`Recorder`] with its bounded event
//! ring buffer, span stack, and embedded metrics [`Registry`].

use std::collections::VecDeque;

use ee360_support::json::{Json, ToJson};

use crate::event::{Event, Level};
use crate::metrics::Registry;
use crate::timeseries::TimeSeries;

/// Default bound on the in-memory event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// The sink instrumented code writes to.
///
/// All methods default to no-ops so `NoopRecorder` (and any partial
/// implementation) costs nothing on the hot path. Callers gate event
/// construction on [`Record::level`] so a disabled recorder never pays
/// for building an [`Event`]:
///
/// ```
/// use ee360_obs::{Event, Level, NoopRecorder, Record};
/// let rec: &mut dyn Record = &mut NoopRecorder;
/// if rec.level() >= Level::Summary {
///     rec.record(Event::Stall { segment: 0, t_sec: 1.0, duration_sec: 0.2 });
/// }
/// ```
pub trait Record {
    /// Verbosity this sink keeps; `Level::Off` means "drop everything".
    fn level(&self) -> Level {
        Level::Off
    }

    /// Captures a structured event (already level-checked by caller).
    fn record(&mut self, _event: Event) {}

    /// Opens a scoped span keyed on logical simulation time.
    fn span_open(&mut self, _name: &'static str, _t_sec: f64) {}

    /// Closes the innermost open span at simulation time `t_sec`.
    fn span_close(&mut self, _t_sec: f64) {}

    /// Adds `n` to a named counter.
    fn count(&mut self, _name: &str, _n: u64) {}

    /// Records a histogram sample.
    fn observe(&mut self, _name: &str, _v: f64) {}

    /// Adds `n` to a named counter at simulation time `t_sec`. Defaults
    /// to plain [`Record::count`]; window-aware sinks additionally
    /// bucket the same value into the window containing `t_sec`
    /// (mirror-don't-model: one statement, one value, two indexes).
    fn count_at(&mut self, name: &str, _t_sec: f64, n: u64) {
        self.count(name, n);
    }

    /// Records a histogram sample at simulation time `t_sec`; see
    /// [`Record::count_at`].
    fn observe_at(&mut self, name: &str, _t_sec: f64, v: f64) {
        self.observe(name, v);
    }

    /// Sets a named gauge.
    fn set_gauge(&mut self, _name: &str, _v: f64) {}

    /// True when wall-clock stage timers should run. Always false for
    /// replayable runs — enabling it is what makes a run non-replayable
    /// (see `crate::profile`).
    fn profiling(&self) -> bool {
        false
    }
}

/// A recorder that drops everything; the fast path for benign runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Record for NoopRecorder {}

/// One node of the span tree. Spans are keyed on the simulation clock;
/// `end_sec < start_sec` (the initial state) marks a span never closed.
#[derive(Debug, Clone, PartialEq)]
struct SpanNode {
    name: &'static str,
    start_sec: f64,
    end_sec: f64,
    parent: Option<usize>,
}

/// Aggregate of all spans sharing a name under one parent aggregate.
/// Children are keyed by span name in a `BTreeMap`, so the exported
/// tree is sorted and deterministic.
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_sec: f64,
    children: std::collections::BTreeMap<&'static str, SpanAgg>,
}

impl SpanAgg {
    fn to_json(&self) -> Json {
        let children = Json::Obj(
            self.children
                .iter()
                .map(|(n, a)| ((*n).to_owned(), a.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("count".to_owned(), Json::Int(self.count as i64)),
            ("total_sec".to_owned(), Json::Num(self.total_sec)),
            ("children".to_owned(), children),
        ])
    }
}

/// The live recorder: level-filtered bounded event ring, span stack,
/// and an embedded metrics [`Registry`].
#[derive(Debug, Clone)]
pub struct Recorder {
    level: Level,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
    spans: Vec<SpanNode>,
    open: Vec<usize>,
    registry: Registry,
    windows: Option<Box<TimeSeries>>,
    profiling: bool,
}

impl Recorder {
    /// A recorder keeping events at or below `level`, with the default
    /// ring capacity and profiling off.
    #[must_use]
    pub fn new(level: Level) -> Self {
        Recorder {
            level,
            capacity: DEFAULT_EVENT_CAPACITY,
            events: VecDeque::new(),
            dropped: 0,
            spans: Vec::new(),
            open: Vec::new(),
            registry: Registry::new(),
            windows: None,
            profiling: false,
        }
    }

    /// Overrides the ring-buffer capacity (minimum 1).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Turns wall-clock stage timers on or off. Leave off (the
    /// default) for any run whose outputs must be byte-identical
    /// under replay.
    #[must_use]
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Enables logical-time windowed metrics with `window_sec`-wide
    /// windows: every `count_at`/`observe_at` is additionally bucketed
    /// by its simulation time. `window_sec <= 0` leaves windowing off.
    #[must_use]
    pub fn with_windows(mut self, window_sec: f64) -> Self {
        self.windows = if window_sec > 0.0 {
            Some(Box::new(TimeSeries::new(window_sec)))
        } else {
            None
        };
        self
    }

    /// The windowed series, when enabled via [`Recorder::with_windows`].
    #[must_use]
    pub fn windows(&self) -> Option<&TimeSeries> {
        self.windows.as_deref()
    }

    /// Folds a per-worker windowed series into this recorder's (no-op
    /// when windowing is off here). Call in user-index order after
    /// fan-outs, exactly like [`Recorder::merge_registry`].
    pub fn merge_windows(&mut self, other: Option<&TimeSeries>) {
        if let (Some(mine), Some(theirs)) = (self.windows.as_deref_mut(), other) {
            mine.merge(theirs);
        }
    }

    /// Events currently held by the ring buffer, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently held.
    #[must_use]
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Events evicted because the ring buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The embedded metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (used by fan-out merge points).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Folds a per-worker registry into this recorder's registry.
    pub fn merge_registry(&mut self, other: &Registry) {
        self.registry.merge(other);
    }

    /// Aggregated span tree: spans grouped by name along parent
    /// chains, each aggregate carrying call count and total simulated
    /// seconds. Unclosed spans contribute a count but zero duration.
    #[must_use]
    pub fn span_tree_json(&self) -> Json {
        let mut root = SpanAgg::default();
        // Paths from the root are rebuilt per span; span counts are
        // bounded by the caller's discipline (sessions open a handful
        // of spans per segment).
        for span in &self.spans {
            let mut path: Vec<&'static str> = vec![span.name];
            let mut p = span.parent;
            while let Some(pi) = p {
                match self.spans.get(pi) {
                    Some(ps) => {
                        path.push(ps.name);
                        p = ps.parent;
                    }
                    None => break,
                }
            }
            let mut agg = &mut root;
            for name in path.iter().rev() {
                agg = agg.children.entry(name).or_default();
            }
            agg.count += 1;
            if span.end_sec >= span.start_sec {
                agg.total_sec += span.end_sec - span.start_sec;
            }
        }
        Json::Obj(
            root.children
                .iter()
                .map(|(n, a)| ((*n).to_owned(), a.to_json()))
                .collect(),
        )
    }

    /// Serializes the buffered events as JSONL, one event per line.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's [`ee360_support::json::JsonError`].
    pub fn trace_jsonl(&self) -> Result<String, ee360_support::json::JsonError> {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&ee360_support::json::to_string(&e.to_json())?);
            out.push('\n');
        }
        Ok(out)
    }
}

impl Record for Recorder {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&mut self, event: Event) {
        if event.level() > self.level {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn span_open(&mut self, name: &'static str, t_sec: f64) {
        let parent = self.open.last().copied();
        self.spans.push(SpanNode {
            name,
            start_sec: t_sec,
            end_sec: f64::NEG_INFINITY,
            parent,
        });
        self.open.push(self.spans.len() - 1);
    }

    fn span_close(&mut self, t_sec: f64) {
        if let Some(i) = self.open.pop() {
            if let Some(span) = self.spans.get_mut(i) {
                span.end_sec = t_sec;
            }
        }
    }

    fn count(&mut self, name: &str, n: u64) {
        self.registry.inc(name, n);
    }

    fn observe(&mut self, name: &str, v: f64) {
        self.registry.observe(name, v);
    }

    fn count_at(&mut self, name: &str, t_sec: f64, n: u64) {
        self.registry.inc(name, n);
        if let Some(w) = self.windows.as_deref_mut() {
            w.inc_at(t_sec, name, n);
        }
    }

    fn observe_at(&mut self, name: &str, t_sec: f64, v: f64) {
        self.registry.observe(name, v);
        if let Some(w) = self.windows.as_deref_mut() {
            w.observe_at(t_sec, name, v);
        }
    }

    fn set_gauge(&mut self, name: &str, v: f64) {
        self.registry.set_gauge(name, v);
    }

    fn profiling(&self) -> bool {
        self.profiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(segment: usize) -> Event {
        Event::Stall {
            segment,
            t_sec: segment as f64,
            duration_sec: 0.1,
        }
    }

    #[test]
    fn noop_recorder_is_off_and_free() {
        let mut rec = NoopRecorder;
        assert_eq!(rec.level(), Level::Off);
        rec.record(stall(0));
        rec.count("x", 1);
        assert!(!rec.profiling());
    }

    #[test]
    fn level_filtering_drops_detail_events_at_summary() {
        let mut rec = Recorder::new(Level::Summary);
        rec.record(stall(0));
        rec.record(Event::Retry {
            segment: 0,
            attempt: 1,
            t_sec: 0.5,
            backoff_sec: 0.25,
        });
        assert_eq!(rec.events_len(), 1);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let mut rec = Recorder::new(Level::Detail).with_capacity(4);
        for i in 0..10 {
            rec.record(stall(i));
        }
        assert_eq!(rec.events_len(), 4);
        assert_eq!(rec.dropped(), 6);
        let first = rec.events().next().expect("events retained");
        assert_eq!(first.segment(), 6, "oldest events evicted first");
    }

    #[test]
    fn span_tree_aggregates_nested_spans_on_sim_time() {
        let mut rec = Recorder::new(Level::Summary);
        for k in 0..3 {
            rec.span_open("session", 0.0);
            rec.span_open("segment", k as f64);
            rec.span_close(k as f64 + 0.5);
            rec.span_close(10.0);
        }
        let tree = rec.span_tree_json();
        let session = tree.get("session").expect("session agg");
        let segment = session
            .get("children")
            .and_then(|c| c.get("segment"))
            .expect("nested agg");
        assert_eq!(segment.get("count").and_then(Json::as_i64), Some(3));
        let total = segment
            .get("total_sec")
            .and_then(Json::as_f64)
            .expect("total");
        assert!((total - 1.5).abs() < 1e-12);
    }

    #[test]
    fn windowed_emissions_partition_the_registry_exactly() {
        let mut rec = Recorder::new(Level::Summary).with_windows(5.0);
        rec.count_at("session.stalls", 1.0, 2);
        rec.count_at("session.stalls", 7.0, 3);
        rec.observe_at("session.stall_sec", 1.0, 0.5);
        rec.observe_at("session.stall_sec", 7.0, 0.25);
        assert_eq!(rec.registry().counter("session.stalls"), 5);
        let windows = rec.windows().expect("windowing on");
        assert_eq!(windows.counter_total("session.stalls"), 5);
        assert_eq!(windows.hist_count_total("session.stall_sec"), 2);
        assert_eq!(windows.len(), 2);
        // Without windowing, count_at degrades to count — same registry.
        let mut plain = Recorder::new(Level::Summary);
        plain.count_at("session.stalls", 1.0, 5);
        assert_eq!(plain.registry().counter("session.stalls"), 5);
        assert!(plain.windows().is_none());
    }

    #[test]
    fn merge_windows_folds_worker_series_in_order() {
        let mut main = Recorder::new(Level::Summary).with_windows(5.0);
        let mut w1 = Recorder::new(Level::Summary).with_windows(5.0);
        w1.count_at("x", 1.0, 1);
        let mut w2 = Recorder::new(Level::Summary).with_windows(5.0);
        w2.count_at("x", 6.0, 2);
        main.merge_windows(w1.windows());
        main.merge_windows(w2.windows());
        let ts = main.windows().expect("windowing on");
        assert_eq!(ts.counter_total("x"), 3);
        assert_eq!(ts.window(0).map(|r| r.counter("x")), Some(1));
        assert_eq!(ts.window(1).map(|r| r.counter("x")), Some(2));
        // Merging into a windows-off recorder is a no-op, not an error.
        let mut off = Recorder::new(Level::Summary);
        off.merge_windows(w1.windows());
        assert!(off.windows().is_none());
    }

    #[test]
    fn trace_jsonl_is_one_event_per_line() {
        let mut rec = Recorder::new(Level::Detail);
        rec.record(stall(0));
        rec.record(stall(1));
        let text = rec.trace_jsonl().expect("serialises");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            ee360_support::json::parse(line).expect("each line parses");
        }
    }
}
