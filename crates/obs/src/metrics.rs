//! Named counters, gauges, and log-bucketed histograms.
//!
//! The registry is the aggregate half of the observability layer: hot
//! paths bump counters and observe histogram samples, and per-session
//! registries are merged — in deterministic index order — across the
//! threaded fan-outs in `core::experiment` and `sim::multiclient`.
//!
//! Histograms use power-of-two buckets whose index is derived from the
//! IEEE-754 exponent bits of the sample, so bucketing is exact and
//! platform-independent (no `log2` rounding involved). Quantiles are
//! reported as the upper bound of the bucket containing the requested
//! rank — a conservative, deterministic estimate — clamped to the
//! exact observed `[min, max]`.

use std::collections::BTreeMap;

use ee360_support::json::{Json, ToJson};

/// Smallest tracked power-of-two exponent; samples below `2^MIN_EXP`
/// (and non-positive samples) land in the underflow bucket.
const MIN_EXP: i32 = -30;
/// Largest tracked exponent; samples at or above `2^(MAX_EXP + 1)`
/// clamp into the last bucket.
const MAX_EXP: i32 = 40;
/// Bucket 0 is the underflow/non-positive bucket; buckets `1..` cover
/// `[2^e, 2^(e+1))` for `e` in `MIN_EXP..=MAX_EXP`.
const N_BUCKETS: usize = (MAX_EXP - MIN_EXP + 2) as usize;

/// `floor(log2(v))` for positive finite `v`, read straight from the
/// exponent bits so the result is bit-exact on every platform.
fn floor_log2(v: f64) -> i32 {
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    // Subnormals (biased == 0) are far below MIN_EXP; report a value
    // that clamps into the underflow bucket.
    if biased == 0 {
        MIN_EXP - 1
    } else {
        biased - 1023
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        if v.is_finite() {
            return 0;
        }
        // +inf clamps high, everything else (NaN, -inf) clamps low.
        return if v > 0.0 { N_BUCKETS - 1 } else { 0 };
    }
    let e = floor_log2(v).clamp(MIN_EXP - 1, MAX_EXP);
    ((e - (MIN_EXP - 1)) as usize).min(N_BUCKETS - 1)
}

/// Upper bound of bucket `i` (`2^(e+1)` for its exponent range).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return (2.0f64).powi(MIN_EXP);
    }
    (2.0f64).powi(MIN_EXP + i as i32)
}

/// A log-bucketed histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            // lint:allow(hot-path-alloc, "one-time: buckets are allocated when a histogram is first registered, then reused")
            buckets: vec![0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if let Some(b) = self.buckets.get_mut(bucket_index(v)) {
            *b += 1;
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running sum of all samples (accumulated in observation
    /// order, so it reconciles bit-for-bit with a sequential `+=` over
    /// the same values).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Conservative quantile estimate: the upper bound of the bucket
    /// containing the `q`-th ranked sample, clamped to `[min, max]`.
    /// `q` is a fraction in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested sample, 1-based, computed in u64 space
        // to stay exact for large counts.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let nonzero: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .map(|(i, b)| Json::Arr(vec![Json::Num(bucket_upper(i)), Json::Int(*b as i64)]))
            .collect();
        Json::Obj(vec![
            ("count".to_owned(), Json::Int(self.count as i64)),
            ("sum".to_owned(), Json::Num(self.sum)),
            ("min".to_owned(), Json::Num(self.min())),
            ("max".to_owned(), Json::Num(self.max())),
            ("p50".to_owned(), Json::Num(self.quantile(0.50))),
            ("p95".to_owned(), Json::Num(self.quantile(0.95))),
            ("p99".to_owned(), Json::Num(self.quantile(0.99))),
            ("buckets".to_owned(), Json::Arr(nonzero)),
        ])
    }
}

/// A named-metric registry: counters, gauges, and histograms.
///
/// Keys are sorted (`BTreeMap`) so the exported JSON is deterministic
/// regardless of the order metrics were first touched in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to the named counter.
    pub fn inc(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            // lint:allow(hot-path-alloc, "first registration only: the get_mut fast path above avoids the key copy thereafter")
            self.counters.insert(name.to_owned(), n);
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            // lint:allow(hot-path-alloc, "first registration only: the get_mut fast path above avoids the key copy thereafter")
            self.gauges.insert(name.to_owned(), v);
        }
    }

    /// Records a histogram sample under `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            // lint:allow(hot-path-alloc, "first registration only: the get_mut fast path above avoids the key copy thereafter")
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Current value of a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Exact sum of the named histogram (0 when never touched).
    #[must_use]
    pub fn hist_sum(&self, name: &str) -> f64 {
        self.histograms.get(name).map_or(0.0, Histogram::sum)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one. Counters and histograms
    /// accumulate; gauges take the other registry's value (last writer
    /// wins), which callers make deterministic by merging in index
    /// order after a fan-out.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_for_powers_of_two() {
        // 1.0 == 2^0 sits in the bucket [2^0, 2^1).
        let i = bucket_index(1.0);
        assert!(bucket_upper(i) == 2.0, "upper {}", bucket_upper(i));
        // Just below 1.0 lands one bucket down.
        assert_eq!(bucket_index(0.999), i - 1);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
    }

    #[test]
    fn histogram_sum_matches_sequential_accumulation() {
        let values = [0.1, 0.25, 3.75, 1e-9, 40.0, 0.0];
        let mut h = Histogram::default();
        let mut acc = 0.0f64;
        for v in values {
            h.observe(v);
            acc += v;
        }
        assert_eq!(h.sum().to_bits(), acc.to_bits());
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 40.0);
    }

    #[test]
    fn quantiles_are_bucket_conservative_and_clamped() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.observe(1.0);
        }
        h.observe(100.0);
        // p50 falls in the [1, 2) bucket; clamped to observed range.
        let p50 = h.quantile(0.50);
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        // p99 hits the 99th sample of 1.0 (rank 99 of 100).
        let p99 = h.quantile(0.99);
        assert!((1.0..=2.0).contains(&p99), "p99 {p99}");
        // p100 is exactly the max.
        assert_eq!(h.quantile(1.0), 100.0);
        // p0 is still bucket-conservative: the first bucket's upper
        // bound, clamped to the observed range.
        let p0 = h.quantile(0.0);
        assert!((1.0..=2.0).contains(&p0), "p0 {p0}");
    }

    #[test]
    fn registry_merge_accumulates_in_index_order() {
        let mut a = Registry::new();
        a.inc("x", 2);
        a.observe("h", 1.0);
        a.set_gauge("g", 1.0);
        let mut b = Registry::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe("h", 3.0);
        b.set_gauge("g", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.gauge("g"), Some(2.0));
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
    }

    #[test]
    fn registry_json_is_sorted_and_parseable() {
        let mut r = Registry::new();
        r.inc("b", 1);
        r.inc("a", 1);
        r.observe("lat", 0.5);
        let s = ee360_support::json::to_string(&r.to_json()).expect("serialises");
        let a = s.find("\"a\"").expect("a present");
        let b = s.find("\"b\"").expect("b present");
        assert!(a < b, "counters sorted: {s}");
        let parsed = ee360_support::json::parse(&s).expect("round-trips");
        assert!(parsed.get("histograms").is_some());
    }
}
