//! Opt-in wall-clock stage profiling.
//!
//! This module is the *only* place in the workspace's replay-sensitive
//! crates allowed to read the wall clock or the environment (it is
//! carved out in the `ee360-lint` determinism rule for exactly that
//! reason). Profiling is off by default and every caller is expected to
//! gate on [`Record::profiling`](crate::record::Record::profiling), so
//! a replayed run never observes a timer and its outputs stay
//! byte-identical.

use std::time::Instant;

/// Environment flag that turns stage timers on: `EE360_OBS_PROFILE=1`.
pub const PROFILE_ENV: &str = "EE360_OBS_PROFILE";

/// True when the user asked for wall-clock stage profiling via
/// [`PROFILE_ENV`]. Runs with profiling on are *not* replayable —
/// never enable it inside determinism tests.
#[must_use]
pub fn profiling_from_env() -> bool {
    std::env::var_os(PROFILE_ENV).is_some_and(|v| v == "1")
}

/// A scoped wall-clock timer for one pipeline stage.
///
/// Construct with [`StageTimer::start`], passing the recorder's
/// `profiling()` flag; when profiling is off the timer holds no clock
/// and [`StageTimer::stop`] returns `None`, so the instrumented path
/// does no timing work at all:
///
/// ```
/// use ee360_obs::{profile::StageTimer, NoopRecorder, Record};
/// let rec = NoopRecorder;
/// let timer = StageTimer::start(rec.profiling());
/// // ... stage body ...
/// assert!(timer.stop().is_none()); // profiling off: no clock was read
/// ```
#[derive(Debug)]
pub struct StageTimer {
    start: Option<Instant>,
}

impl StageTimer {
    /// Starts the timer when `enabled`, otherwise records nothing.
    #[must_use]
    pub fn start(enabled: bool) -> Self {
        StageTimer {
            start: if enabled { Some(Instant::now()) } else { None },
        }
    }

    /// Elapsed wall seconds since `start`, or `None` when disabled.
    #[must_use]
    pub fn stop(self) -> Option<f64> {
        self.start.map(|t| t.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_reads_no_clock_and_returns_none() {
        let t = StageTimer::start(false);
        assert!(t.stop().is_none());
    }

    #[test]
    fn enabled_timer_reports_nonnegative_elapsed() {
        let t = StageTimer::start(true);
        let dt = t.stop().expect("enabled timer reports");
        assert!(dt >= 0.0);
    }
}
