//! `ee360-obs` — deterministic structured tracing, metrics registry,
//! and opt-in per-stage profiling for the streaming pipeline.
//!
//! The workspace's replay policy is *byte-identical same-seed output*,
//! so observability here is deterministic by construction:
//!
//! * **Events and spans** ([`event`], [`record`]) are keyed on logical
//!   simulation time — segment index and sim clock — never wall-clock.
//!   A serialized trace is therefore a pure function of the seed.
//! * **Metrics** ([`metrics`]) are counters, gauges, and log-bucketed
//!   histograms in sorted maps; per-session registries merge in index
//!   order after threaded fan-outs so thread count never changes the
//!   aggregate.
//! * **Profiling** ([`profile`]) is the single sanctioned wall-clock
//!   island. It is opt-in (`EE360_OBS_PROFILE=1`), gated behind
//!   [`Record::profiling`], and never enabled on replay paths.
//!
//! Instrumented code writes to `&mut dyn Record`; benign paths pass
//! [`NoopRecorder`], whose methods are all default no-ops, so the
//! un-instrumented hot path costs a virtual call per site at most.
//! Callers gate event construction on [`Record::level`] to avoid even
//! building events a sink would drop.
//!
//! Exporters ([`export`]) produce `results/obs_report.json` (aggregate
//! registry + span tree) and a JSONL per-session trace.

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod record;

pub use event::{Event, Level};
pub use metrics::{Histogram, Registry};
pub use record::{NoopRecorder, Record, Recorder};
