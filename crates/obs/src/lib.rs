//! `ee360-obs` — deterministic structured tracing, metrics registry,
//! and opt-in per-stage profiling for the streaming pipeline.
//!
//! The workspace's replay policy is *byte-identical same-seed output*,
//! so observability here is deterministic by construction:
//!
//! * **Events and spans** ([`event`], [`record`]) are keyed on logical
//!   simulation time — segment index and sim clock — never wall-clock.
//!   A serialized trace is therefore a pure function of the seed.
//! * **Metrics** ([`metrics`]) are counters, gauges, and log-bucketed
//!   histograms in sorted maps; per-session registries merge in index
//!   order after threaded fan-outs so thread count never changes the
//!   aggregate.
//! * **Profiling** ([`profile`]) is the single sanctioned wall-clock
//!   island. It is opt-in (`EE360_OBS_PROFILE=1`), gated behind
//!   [`Record::profiling`], and never enabled on replay paths.
//! * **Windowed series** ([`timeseries`]) bucket the same emissions by
//!   logical simulation time into fixed-width windows, merged with the
//!   same user-index-order discipline, so per-window counters partition
//!   the whole-run registry exactly.
//! * **Sampling and exemplars** ([`sample`]) pick trace-keeping
//!   sessions by a pure `(seed, session)` hash and keep bounded worst-K
//!   tail snapshots whose membership is offer-order independent.
//! * **SLOs** ([`slo`]) evaluate declarative objectives per window with
//!   burn-rate accounting over the deterministic series.
//!
//! Instrumented code writes to `&mut dyn Record`; benign paths pass
//! [`NoopRecorder`], whose methods are all default no-ops, so the
//! un-instrumented hot path costs a virtual call per site at most.
//! Callers gate event construction on [`Record::level`] to avoid even
//! building events a sink would drop.
//!
//! Exporters ([`export`]) produce `results/obs_report.json` (aggregate
//! registry + span tree) and a JSONL per-session trace.

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod sample;
pub mod slo;
pub mod timeseries;

pub use event::{Event, Level};
pub use metrics::{Histogram, Registry};
pub use record::{NoopRecorder, Record, Recorder};
pub use sample::{sampled, splitmix64, ExemplarSet, ExemplarSummary, Exemplars};
pub use slo::{default_slos, evaluate_all, Objective, SloResult, SloSpec};
pub use timeseries::{
    window_index, FleetSeries, SessionWindows, TelemetryConfig, TimeSeries, WindowCums,
    TIMESERIES_SCHEMA,
};
