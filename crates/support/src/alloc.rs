//! A counting global-allocator shim for memory-bound regression tests.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and keeps two atomic
//! tallies: bytes currently live and the high-water mark. Install it in
//! a test binary with `#[global_allocator]`, snapshot around the code
//! under test, and assert the peak against a pinned budget — a
//! reintroduced per-session vector then fails loudly instead of
//! silently regressing the fleet's memory story.
//!
//! The counters use relaxed atomics: the peak is exact under
//! single-threaded use and a close lower bound under concurrency (an
//! allocation racing the peak update can be missed by at most the size
//! of the in-flight allocations), which is plenty for budget asserts.
//!
//! # Example
//!
//! ```ignore
//! use ee360_support::alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.reset_peak();
//! run_workload();
//! let peak = ALLOC.peak_bytes().saturating_sub(before);
//! assert!(peak < BUDGET);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`GlobalAlloc`] that delegates to the system allocator while
/// tracking live bytes and their high-water mark.
#[derive(Debug)]
pub struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counter (all tallies zero).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes since construction or the last
    /// [`Self::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count and returns
    /// that baseline, so a caller can measure the peak *delta* of a
    /// workload: `peak_bytes() - reset_peak()`.
    pub fn reset_peak(&self) -> usize {
        let live = self.live.load(Ordering::Relaxed);
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    fn add(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every path delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the bookkeeping only touches atomics and never
// inspects or aliases the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            self.add(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Old block freed, new block live.
            self.sub(layout.size());
            self.add(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here — exercised directly so
    // the unit test stays independent of the test binary's allocator.
    #[test]
    fn tracks_live_and_peak_through_a_lifecycle() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).expect("layout");
        let a = unsafe { counter.alloc(layout) };
        assert!(!a.is_null());
        assert_eq!(counter.live_bytes(), 1024);
        let b = unsafe { counter.alloc(layout) };
        assert!(!b.is_null());
        assert_eq!(counter.live_bytes(), 2048);
        assert_eq!(counter.peak_bytes(), 2048);
        unsafe { counter.dealloc(a, layout) };
        assert_eq!(counter.live_bytes(), 1024);
        assert_eq!(counter.peak_bytes(), 2048, "peak is a high-water mark");
        let baseline = counter.reset_peak();
        assert_eq!(baseline, 1024);
        assert_eq!(counter.peak_bytes(), 1024);
        unsafe { counter.dealloc(b, layout) };
        assert_eq!(counter.live_bytes(), 0);
    }

    #[test]
    fn realloc_retracks_the_block() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).expect("layout");
        let ptr = unsafe { counter.alloc(layout) };
        assert!(!ptr.is_null());
        let grown = unsafe { counter.realloc(ptr, layout, 4096) };
        assert!(!grown.is_null());
        assert_eq!(counter.live_bytes(), 4096);
        assert_eq!(counter.peak_bytes(), 4096);
        let grown_layout = Layout::from_size_align(4096, 8).expect("layout");
        unsafe { counter.dealloc(grown, grown_layout) };
        assert_eq!(counter.live_bytes(), 0);
    }
}
