//! Zero-dependency substrate for the `ee360` workspace.
//!
//! Everything the workspace previously pulled from crates.io, rebuilt
//! in-repo so the whole project compiles and tests with no network and
//! no registry:
//!
//! * [`rng`] — a seedable xoshiro256** PRNG (replaces `rand`),
//! * [`json`] — a JSON tree, serialiser, parser, and the
//!   [`ToJson`](json::ToJson)/[`FromJson`](json::FromJson) trait pair
//!   (replaces `serde`/`serde_json`),
//! * [`prop`] — a property-testing harness with shrinking and
//!   regression-seed replay (replaces `proptest`),
//! * [`parallel`] — a std-only scoped worker pool (replaces
//!   `crossbeam`/`parking_lot`),
//! * [`bench`] — a micro-benchmark timer (replaces `criterion`),
//! * [`alloc`] — a counting global-allocator shim for memory-bound
//!   regression tests (replaces `dhat`-style heap profiling),
//! * [`quantile`] — a deterministic streaming quantile sketch for the
//!   robust-control path (replaces `tdigest`-style sketches).
//!
//! The repo policy is hermetic builds: new external dependencies are
//! not added unless vendored into the tree. Extend this crate instead.

pub mod alloc;
pub mod bench;
pub mod json;
pub mod parallel;
pub mod prop;
pub mod quantile;
pub mod rng;

/// The imports test modules want: the `proptest!` macro family plus the
/// strategy combinators, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::json::{FromJson, Json, JsonError, ToJson};
    pub use crate::prop::{self, Strategy};
    pub use crate::rng::StdRng;
    pub use crate::{
        impl_json_enum, impl_json_newtype, impl_json_struct, prop_assert, prop_assert_eq,
        prop_assert_ne, proptest,
    };
}
