//! Deterministic, seedable pseudo-random numbers.
//!
//! The workspace's only randomness source: an in-repo xoshiro256**
//! generator seeded through SplitMix64. Every stream is fully determined
//! by its `u64` seed, on every platform, forever — the property the
//! trace generators, the QoE fitting pipeline, and the reproducibility
//! tests all rely on. The type is named [`StdRng`] because it is the
//! repo's standard RNG; it intentionally mirrors the subset of the
//! `rand` crate API the workspace uses (`seed_from_u64`, `gen_range`,
//! `gen_bool`) so call sites read identically.

use std::ops::{Range, RangeInclusive};

/// The workspace's standard seeded PRNG (xoshiro256**).
///
/// Passes BigCrush in its published form; period 2^256 − 1. Not
/// cryptographic — it drives simulations, not secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose entire stream is determined by `seed`.
    ///
    /// The four words of state are drawn from a SplitMix64 stream so that
    /// nearby seeds (0, 1, 2, …) still produce uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Self { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`, float or integer).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.gen_f64() < p
    }

    /// A standard normal sample (mean 0, variance 1), via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1] so the log is finite.
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// An exponential sample with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive, got {lambda}");
        -(1.0 - self.gen_f64()).ln() / lambda
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// An unbiased uniform integer in `[0, bound)` via Lemire's method.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range types [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.gen_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )+};
}

impl_int_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn known_answer_is_stable_across_builds() {
        // Golden values: changing the generator or the seeding procedure
        // silently invalidates every recorded trace, so pin the stream.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.5..7.25);
            assert!((-3.5..7.25).contains(&v));
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn inclusive_int_range_includes_endpoints() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.gen_range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3.0..3.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_bool(1.5);
    }
}
