//! Deterministic streaming quantile sketch.
//!
//! The robust-control path (residual FoV-error quantiles, downside
//! bandwidth margins) needs running quantile estimates that obey the
//! repo's replay policy: same inputs ⇒ same outputs, bit for bit, with
//! no wall clock, no randomised sampling and no platform-dependent
//! hashing. [`QuantileSketch`] is a fixed-capacity sorted buffer with
//! **deterministic decimation**: while under capacity it is exact; at
//! capacity it halves itself by keeping alternating elements, flipping
//! the kept parity each compaction so neither tail is systematically
//! favoured. Every operation is a pure function of the observation
//! sequence.
//!
//! This file is on the lint gate's seeded-hash list: float→int `as`
//! casts are banned here, so ranks are derived by integer search
//! against `q·(len−1)` instead of casting.

/// A bounded, deterministic quantile estimator over a stream of `f64`s.
///
/// # Example
///
/// ```
/// use ee360_support::quantile::QuantileSketch;
///
/// let mut sk = QuantileSketch::new(64);
/// for i in 0..100 {
///     sk.observe(i as f64);
/// }
/// let p90 = sk.quantile(0.9).unwrap();
/// assert!(p90 > 80.0 && p90 < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Maximum retained samples (compaction halves the buffer at this
    /// size).
    cap: usize,
    /// Retained samples, sorted ascending by `total_cmp`.
    samples: Vec<f64>,
    /// Total observations ever fed (survives compaction).
    count: u64,
    /// Parity of the next compaction: alternates which half of the
    /// interleaved samples survives.
    keep_odd: bool,
}

impl QuantileSketch {
    /// Creates a sketch retaining at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2` (a single retained sample cannot bracket a
    /// quantile).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "sketch capacity must be at least 2");
        Self {
            cap,
            samples: Vec::with_capacity(cap + 1),
            count: 0,
            keep_odd: false,
        }
    }

    /// Feeds one observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — a NaN would poison the order.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "sketch observations must be finite, got {x}");
        self.count += 1;
        let at = self.samples.partition_point(|s| s.total_cmp(&x).is_lt());
        self.samples.insert(at, x);
        if self.samples.len() > self.cap {
            self.compact();
        }
    }

    /// Deterministic decimation: keep every second sample, alternating
    /// the surviving parity so repeated compactions do not drift toward
    /// either extreme.
    fn compact(&mut self) {
        let parity = usize::from(self.keep_odd);
        let mut idx = 0usize;
        self.samples.retain(|_| {
            let keep = idx % 2 == parity;
            idx += 1;
            keep
        });
        self.keep_odd = !self.keep_odd;
    }

    /// Number of samples currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total observations ever fed, including decimated ones.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile of the retained samples (linear interpolation
    /// between bracketing ranks), or `None` while empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        // Fractional rank q·(n−1), split into floor index + remainder
        // without a float→int cast: advance an integer cursor while the
        // next whole rank still lies at or below the target.
        let target = q * (n - 1) as f64;
        let mut lo = 0usize;
        while lo + 1 < n && ((lo + 1) as f64) <= target {
            lo += 1;
        }
        let frac = target - lo as f64;
        let a = self.samples[lo];
        let b = self.samples[(lo + 1).min(n - 1)];
        Some(a + frac * (b - a))
    }

    /// Fraction of retained samples ≤ `x` (an empirical CDF read), or
    /// `None` while empty.
    pub fn fraction_at_or_below(&self, x: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let below = self.samples.partition_point(|s| s.total_cmp(&x).is_le());
        Some(below as f64 / self.samples.len() as f64)
    }

    /// Drops all state, as if freshly constructed.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.count = 0;
        self.keep_odd = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sk = QuantileSketch::new(8);
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.fraction_at_or_below(1.0), None);
    }

    #[test]
    fn exact_below_capacity() {
        let mut sk = QuantileSketch::new(16);
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            sk.observe(x);
        }
        assert_eq!(sk.len(), 5);
        assert_eq!(sk.quantile(0.0), Some(1.0));
        assert_eq!(sk.quantile(0.5), Some(3.0));
        assert_eq!(sk.quantile(1.0), Some(5.0));
        // Interpolation between ranks 1 and 2: 2 + 0.5·(3−2).
        assert!((sk.quantile(0.375).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn compaction_bounds_memory_and_keeps_shape() {
        // An irregular stream roughly uniform on [0, 997): the decimated
        // sketch must stay bounded and keep the quantiles in the right
        // neighbourhood. (A *monotone* stream would bias the survivors
        // toward recent values — the robust-control residual streams the
        // sketch serves are irregular, which is what we pin here.)
        let mut sk = QuantileSketch::new(64);
        let mut x = 7.0f64;
        for _ in 0..10_000 {
            x = (x * 31.0 + 17.0) % 997.0;
            sk.observe(x);
        }
        assert!(sk.len() <= 64);
        assert_eq!(sk.count(), 10_000);
        let p50 = sk.quantile(0.5).unwrap();
        let p90 = sk.quantile(0.9).unwrap();
        assert!((p50 - 498.0).abs() < 150.0, "p50 drifted to {p50}");
        assert!((p90 - 897.0).abs() < 150.0, "p90 drifted to {p90}");
        assert!(p50 < p90);
    }

    #[test]
    fn deterministic_across_replays() {
        let feed = |sk: &mut QuantileSketch| {
            // A fixed but irregular stream (no RNG: the sketch must be a
            // pure function of its inputs anyway).
            let mut x = 7.0f64;
            for _ in 0..500 {
                x = (x * 31.0 + 17.0) % 997.0;
                sk.observe(x);
            }
        };
        let mut a = QuantileSketch::new(24);
        let mut b = QuantileSketch::new(24);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_eq!(
                a.quantile(q).unwrap().to_bits(),
                b.quantile(q).unwrap().to_bits(),
                "quantile {q} must replay bit-identically"
            );
        }
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut sk = QuantileSketch::new(8);
        sk.observe(42.0);
        assert!(!sk.is_empty());
        assert_eq!(sk.len(), 1);
        assert_eq!(sk.count(), 1);
        // With one sample both bracketing ranks collapse onto it, so the
        // interpolation must return it exactly at every q.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(sk.quantile(q), Some(42.0), "q = {q}");
        }
        assert_eq!(sk.fraction_at_or_below(41.0), Some(0.0));
        assert_eq!(sk.fraction_at_or_below(42.0), Some(1.0));
    }

    #[test]
    fn overflow_is_deterministic_across_seeds() {
        // Reservoir overflow: feed well past capacity from a seeded RNG
        // and require the decimated sketch to be a pure function of the
        // observation sequence — same seed ⇒ bit-identical sketch, a
        // different seed ⇒ still bounded with sane order statistics.
        let fill = |seed: u64| {
            let mut rng = crate::rng::StdRng::seed_from_u64(seed);
            let mut sk = QuantileSketch::new(32);
            for _ in 0..4_000 {
                sk.observe(rng.gen_f64());
            }
            sk
        };
        for seed in [1u64, 7, 0xDEAD_BEEF] {
            let a = fill(seed);
            let b = fill(seed);
            assert_eq!(a, b, "seed {seed} must replay to an identical sketch");
            assert!(a.len() <= 32);
            assert_eq!(a.count(), 4_000);
            for q in [0.1, 0.5, 0.9] {
                assert_eq!(
                    a.quantile(q).unwrap().to_bits(),
                    b.quantile(q).unwrap().to_bits(),
                    "seed {seed} quantile {q} must be bit-identical"
                );
            }
            // Uniform [0,1) stream: the decimated median stays central.
            let p50 = a.quantile(0.5).unwrap();
            assert!(
                (0.2..0.8).contains(&p50),
                "seed {seed} p50 drifted to {p50}"
            );
        }
        assert_ne!(
            fill(1).quantile(0.5),
            fill(2).quantile(0.5),
            "distinct seeds should produce distinct retained samples"
        );
    }

    #[test]
    fn fraction_at_or_below_is_an_empirical_cdf() {
        let mut sk = QuantileSketch::new(16);
        for x in [1.0, 2.0, 3.0, 4.0] {
            sk.observe(x);
        }
        assert_eq!(sk.fraction_at_or_below(0.5), Some(0.0));
        assert_eq!(sk.fraction_at_or_below(2.0), Some(0.5));
        assert_eq!(sk.fraction_at_or_below(10.0), Some(1.0));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sk = QuantileSketch::new(4);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            sk.observe(x);
        }
        sk.reset();
        assert!(sk.is_empty());
        assert_eq!(sk.count(), 0);
        assert_eq!(sk, QuantileSketch::new(4));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_observation_panics() {
        let mut sk = QuantileSketch::new(4);
        sk.observe(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_panics() {
        let _ = QuantileSketch::new(1);
    }
}
