//! A minimal, dependency-free JSON layer.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: persisting
//! manifests, traces, reports, and metrics. Three pieces:
//!
//! * [`Json`] — a JSON value tree. Objects preserve insertion order so
//!   serialisation is deterministic (two identical values always produce
//!   byte-identical text).
//! * [`to_string`] / [`from_str`] — serialiser and recursive-descent
//!   parser. Floats are written with Rust's shortest-round-trip `{}`
//!   formatting, so `value -> text -> value` is lossless; NaN and ±inf
//!   are rejected (JSON has no encoding for them).
//! * [`ToJson`] / [`FromJson`] — the conversion trait pair, with
//!   [`impl_json_struct!`](crate::impl_json_struct),
//!   [`impl_json_enum!`](crate::impl_json_enum) and
//!   [`impl_json_newtype!`](crate::impl_json_newtype) to implement both
//!   for a type in one line (the moral equivalent of
//!   `#[derive(Serialize, Deserialize)]`).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Maximum nesting depth the parser accepts (guards against stack
/// overflow on adversarial input).
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional or exponent part that fits `i64`.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, accepting both number representations.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            // lint:allow(float-compare, "intentional exact check: a value is an integer iff fract() is exactly zero")
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A short name for the value's kind, used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Error produced by serialisation, parsing, or conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// A NaN or infinite float cannot be represented in JSON.
    NonFinite,
    /// The input text is not valid JSON. Byte offset and message.
    Parse(usize, String),
    /// A value had the wrong JSON kind for the requested conversion.
    Type {
        /// What the conversion needed.
        expected: &'static str,
        /// What the value actually was.
        found: &'static str,
    },
    /// An object is missing a required field.
    MissingField(String),
    /// A string did not name a known enum variant.
    UnknownVariant(String),
    /// Any other conversion failure.
    Invalid(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::NonFinite => write!(f, "NaN or infinite float has no JSON encoding"),
            JsonError::Parse(at, msg) => write!(f, "invalid JSON at byte {at}: {msg}"),
            JsonError::Type { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            JsonError::MissingField(name) => write!(f, "missing field `{name}`"),
            JsonError::UnknownVariant(name) => write!(f, "unknown variant `{name}`"),
            JsonError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for JsonError {}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

/// Serialises a value to compact JSON text.
///
/// # Errors
///
/// Returns [`JsonError::NonFinite`] if any float in the tree is NaN or
/// infinite.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out)?;
    Ok(out)
}

/// Serialises a value to indented JSON text (two-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value_pretty(&value.to_json(), 0, &mut out)?;
    Ok(out)
}

fn write_value(v: &Json, out: &mut String) -> Result<(), JsonError> {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(n) => write_f64(*n, out)?,
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Json, indent: usize, out: &mut String) -> Result<(), JsonError> {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_value_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
            Ok(())
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, indent + 1, out)?;
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a finite float using Rust's shortest-round-trip formatting.
fn write_f64(n: f64, out: &mut String) -> Result<(), JsonError> {
    if !n.is_finite() {
        return Err(JsonError::NonFinite);
    }
    // `{}` on f64 prints the shortest decimal string that parses back to
    // exactly the same bits — precisely the float_roundtrip guarantee.
    let s = format!("{n}");
    out.push_str(&s);
    // "1" round-trips as an integer; keep it a float-shaped token so the
    // value re-parses with the same representation it was written from.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] on malformed input (including trailing
/// garbage) and whatever conversion error `T::from_json` produces.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Parses JSON text into a [`Json`] tree.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::Parse(p.pos, "trailing characters".into()));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::Parse(self.pos, msg.into())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError::Parse(start, "invalid number".into()))?;
        if !n.is_finite() {
            return Err(JsonError::Parse(start, "number out of range".into()));
        }
        Ok(Json::Num(n))
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] tree (the `Serialize` half).
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] tree (the `Deserialize` half).
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or(JsonError::Type {
            expected: "bool",
            found: v.kind(),
        })
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or(JsonError::Type {
            expected: "number",
            found: v.kind(),
        })
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|n| n as f32)
    }
}

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    // u64 values above i64::MAX: store as float (lossy
                    // above 2^53, but no workspace type goes there).
                    Err(_) => Json::Num(*self as f64),
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or(JsonError::Type {
                    expected: "integer",
                    found: v.kind(),
                })?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError::Invalid(format!(
                        "{} out of range for {}", i, stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned).ok_or(JsonError::Type {
            expected: "string",
            found: v.kind(),
        })
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or(JsonError::Type {
                expected: "array",
                found: v.kind(),
            })?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for std::collections::VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for std::collections::VecDeque<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Vec::<T>::from_json(v)?.into())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = Vec::<T>::from_json(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| JsonError::Invalid(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or(JsonError::Type {
                expected: "object",
                found: v.kind(),
            })?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort keys so serialisation stays deterministic.
        let mut pairs: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(pairs)
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or(JsonError::Type {
                expected: "object",
                found: v.kind(),
            })?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v.as_array().ok_or(JsonError::Type {
                    expected: "array",
                    found: v.kind(),
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(JsonError::Invalid(format!(
                        "expected tuple of {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Reads a struct field during [`FromJson`] decoding; shared by the
/// [`impl_json_struct!`](crate::impl_json_struct) expansion.
///
/// # Errors
///
/// Returns [`JsonError::MissingField`] when the key is absent.
pub fn field<T: FromJson>(obj: &Json, name: &str) -> Result<T, JsonError> {
    let v = obj
        .get(name)
        .ok_or_else(|| JsonError::MissingField(name.to_owned()))?;
    T::from_json(v).map_err(|e| JsonError::Invalid(format!("field `{name}`: {e}")))
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serialised as an object in declaration order — the replacement for
/// `#[derive(Serialize, Deserialize)]`. Invoke it in the module that
/// defines the struct (it accesses fields directly, so privacy is
/// respected).
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                if v.as_object().is_none() {
                    return Err($crate::json::JsonError::Type {
                        expected: "object",
                        found: "non-object",
                    });
                }
                Ok(Self {
                    $($field: $crate::json::field(v, stringify!($field))?),+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a fieldless enum, serialised
/// as the variant name string (matching serde's unit-variant encoding).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant)),+
                };
                $crate::json::Json::Str(name.to_owned())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                let s = v.as_str().ok_or($crate::json::JsonError::Type {
                    expected: "string",
                    found: "non-string",
                })?;
                match s {
                    $(stringify!($variant) => Ok(<$ty>::$variant),)+
                    other => Err($crate::json::JsonError::UnknownVariant(other.to_owned())),
                }
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct,
/// serialised transparently as the inner value (serde's newtype
/// encoding).
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ty) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&"hi".to_owned()).unwrap(), "\"hi\"");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn whole_floats_keep_float_shape() {
        // 1.0f64 must not serialise as bare `1`, or a round trip through
        // Json would silently change Num -> Int.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            9007199254740993.0,
            std::f64::consts::PI,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn nan_and_inf_are_rejected() {
        assert_eq!(to_string(&f64::NAN).unwrap_err(), JsonError::NonFinite);
        assert_eq!(to_string(&f64::INFINITY).unwrap_err(), JsonError::NonFinite);
        assert_eq!(
            to_string(&f64::NEG_INFINITY).unwrap_err(),
            JsonError::NonFinite
        );
        assert_eq!(
            to_string(&vec![1.0, f64::NAN]).unwrap_err(),
            JsonError::NonFinite
        );
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.25];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&text).unwrap(), v);

        let some: Option<u32> = Some(3);
        let none: Option<u32> = None;
        assert_eq!(to_string(&some).unwrap(), "3");
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1.5f64, -2.0f64, 3.25f64);
        let text = to_string(&t).unwrap();
        assert_eq!(text, "[1.5,-2.0,3.25]");
        assert_eq!(from_str::<(f64, f64, f64)>(&text).unwrap(), t);

        let pair = (4usize, 9usize);
        let text = to_string(&pair).unwrap();
        assert_eq!(from_str::<(usize, usize)>(&text).unwrap(), pair);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ \u{1}\u{1F600}".to_owned();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "{not json",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"unterminated",
            "[1] trailing",
            "",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_valid_corpus() {
        for good in [
            "null",
            "-0.5e-3",
            "[[[]]]",
            "{\"a\":{\"b\":[1,2,{\"c\":null}]}}",
            " { \"x\" : 1 } ",
            "1e308",
        ] {
            assert!(parse(good).is_ok(), "rejected {good:?}");
        }
        assert!(parse("1e400").is_err(), "overflow should be rejected");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[1].0, "a");
        let mut out = String::new();
        write_value(&v, &mut out).unwrap();
        assert_eq!(out, r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integers_survive_exactly() {
        let big = i64::MAX;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<i64>(&text).unwrap(), big);
        let neg = i64::MIN;
        assert_eq!(from_str::<i64>(&to_string(&neg).unwrap()).unwrap(), neg);
    }

    #[test]
    fn int_float_cross_decoding() {
        // An integer token can feed an f64 field...
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        // ...and an integral float can feed an integer field.
        assert_eq!(from_str::<u32>("7.0").unwrap(), 7);
        // But fractional floats cannot.
        assert!(from_str::<u32>("7.5").is_err());
        // And negatives cannot feed unsigned fields.
        assert!(from_str::<u32>("-1").is_err());
    }

    #[derive(Debug)]
    struct Demo {
        x: f64,
        name: String,
        tags: Vec<u32>,
    }
    impl_json_struct!(Demo { x, name, tags });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_json_enum!(Color { Red, Green });

    struct Wrap(f64);
    impl_json_newtype!(Wrap);

    #[test]
    fn struct_macro_roundtrip() {
        let d = Demo {
            x: 2.5,
            name: "n".into(),
            tags: vec![1, 2],
        };
        let text = to_string(&d).unwrap();
        assert_eq!(text, r#"{"x":2.5,"name":"n","tags":[1,2]}"#);
        let back: Demo = from_str(&text).unwrap();
        assert_eq!(back.x, 2.5);
        assert_eq!(back.name, "n");
        assert_eq!(back.tags, vec![1, 2]);
    }

    #[test]
    fn struct_macro_reports_missing_field() {
        let err = from_str::<Demo>(r#"{"x":2.5,"name":"n"}"#).unwrap_err();
        assert!(err.to_string().contains("tags"), "{err}");
    }

    #[test]
    fn enum_macro_matches_serde_encoding() {
        assert_eq!(to_string(&Color::Red).unwrap(), "\"Red\"");
        assert_eq!(from_str::<Color>("\"Green\"").unwrap(), Color::Green);
        let err = from_str::<Color>("\"Blue\"").unwrap_err();
        assert!(matches!(err, JsonError::UnknownVariant(_)));
    }

    #[test]
    fn newtype_macro_is_transparent() {
        let w = Wrap(4.25);
        assert_eq!(to_string(&w).unwrap(), "4.25");
        let back: Wrap = from_str("4.25").unwrap();
        assert_eq!(back.0, 4.25);
    }

    #[test]
    fn pretty_printing_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":{"c":null},"d":[]}"#).unwrap();
        let mut pretty = String::new();
        write_value_pretty(&v, 0, &mut pretty).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
