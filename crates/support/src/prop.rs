//! A small property-based testing harness.
//!
//! In-repo replacement for the `proptest` crate, covering the subset the
//! workspace uses: range strategies, tuples of strategies, vectors of
//! strategies, the [`proptest!`](crate::proptest) macro, and the
//! `prop_assert*` family. On failure the harness greedily shrinks the
//! input, reports the seed, and records it in
//! `proptest-regressions/<file>.txt`; recorded seeds are replayed first
//! on every subsequent run.
//!
//! Determinism: case seeds are derived from the test's full name, so a
//! given test exercises the same inputs on every run and every machine.
//! Set `EE360_PROP_SEED` to explore a different stream and
//! `EE360_PROP_CASES` to change the case count (default 64).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::rng::StdRng;

/// How many cases each property runs when `EE360_PROP_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Maximum shrink iterations per failure.
const MAX_SHRINK_STEPS: usize = 512;

/// A failed property assertion (returned by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestError(pub String);

/// What a property body returns.
pub type TestResult = Result<(), TestError>;

/// A generator of test inputs that also knows how to shrink them.
pub trait Strategy {
    /// The input type produced.
    type Value: Clone + Debug;

    /// Draws one input from the seeded generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simpler inputs, best candidates first. An empty vector
    /// means the value is fully shrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(*value, self.start, self.end, false)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(*value, *self.start(), *self.end(), true)
    }
}

fn shrink_f64(value: f64, lo: f64, hi: f64, inclusive: bool) -> Vec<f64> {
    let mut out = Vec::new();
    let in_range = |x: f64| x >= lo && (x < hi || (inclusive && x <= hi));
    let mut push = |x: f64| {
        if in_range(x) && x != value && !out.contains(&x) {
            out.push(x);
        }
    };
    push(0.0);
    push(lo);
    push(lo + (value - lo) / 2.0);
    push(value / 2.0);
    out
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = *self.start();
                let v = *value;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out
            }
        }
    )+};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// A strategy producing `Vec`s of values from an element strategy,
    /// with lengths drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.sizes.min..=self.sizes.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            // Structural shrinks first: shorter vectors are simpler.
            if value.len() > self.sizes.min {
                let half = (value.len() / 2).max(self.sizes.min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then element-wise shrinks, one element at a time.
            for (i, elem) in value.iter().enumerate() {
                if let Some(candidate) = self.element.shrink(elem).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Runs a property: replayed regression seeds first, then `cases` fresh
/// seeds derived deterministically from `test_name`.
///
/// Called by the [`proptest!`](crate::proptest) macro; not usually
/// invoked directly.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails, after
/// shrinking. The message includes the seed and the shrunken input.
pub fn run<S, F>(manifest_dir: &str, source_file: &str, test_name: &str, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    // lint:allow(determinism, "test-harness knob: EE360_PROP_CASES only tunes test effort, never sim output")
    let cases: u32 = std::env::var("EE360_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES);
    // lint:allow(determinism, "test-harness knob: EE360_PROP_SEED only replays a failing case, never sim output")
    let base_seed: u64 = std::env::var("EE360_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(test_name.as_bytes()));

    let regression_path = regression_file(manifest_dir, source_file);
    for seed in read_regression_seeds(&regression_path) {
        check_case(strategy, &body, seed, test_name, &regression_path, true);
    }

    for case in 0..cases {
        let seed = base_seed.wrapping_add(splitmix64(case as u64 + 1));
        check_case(strategy, &body, seed, test_name, &regression_path, false);
    }
}

fn check_case<S, F>(
    strategy: &S,
    body: &F,
    seed: u64,
    test_name: &str,
    regression_path: &Path,
    replay: bool,
) where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let input = strategy.generate(&mut rng);
    let Some(first_failure) = run_one(body, input.clone()) else {
        return;
    };

    // Greedy shrink: adopt any simpler input that still fails.
    let mut current = input;
    let mut message = first_failure;
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&current) {
            steps += 1;
            if let Some(msg) = run_one(body, candidate.clone()) {
                current = candidate;
                message = msg;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }

    if !replay {
        record_regression(regression_path, seed, &current);
    }
    panic!(
        "property `{test_name}` failed{}.\n  seed: {seed}\n  input (shrunk): {current:?}\n  cause: {message}\n  (replaying: this seed was appended to {})",
        if replay { " (replayed regression seed)" } else { "" },
        regression_path.display(),
    );
}

/// Runs one case, converting both `Err` returns and panics into a
/// failure message. `None` means the case passed.
fn run_one<V, F>(body: &F, input: V) -> Option<String>
where
    F: Fn(V) -> TestResult,
{
    match catch_unwind(AssertUnwindSafe(|| body(input))) {
        Ok(Ok(())) => None,
        Ok(Err(TestError(msg))) => Some(msg),
        Err(panic) => Some(panic_message(&panic)),
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic (non-string payload)".to_owned()
    }
}

/// `<manifest_dir>/proptest-regressions/<file stem>.txt`, mirroring the
/// proptest convention so regression files sit next to the crate.
fn regression_file(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parses `seed = <u64>` lines; everything else (comments, legacy
/// proptest `cc` lines) is ignored.
fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("seed")?.trim_start().strip_prefix('=')?;
            let num = rest.split(&['#', ' ']).find(|s| !s.is_empty())?;
            num.parse().ok()
        })
        .collect()
}

fn record_regression<V: Debug>(path: &Path, seed: u64, shrunk: &V) {
    let Some(parent) = path.parent() else { return };
    if std::fs::create_dir_all(parent).is_err() {
        return;
    }
    let mut existing = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failure cases found by the ee360-support property harness.\n\
         # Each `seed = N` line is replayed before fresh cases. Check this file in.\n"
            .to_owned()
    });
    let line = format!("seed = {seed} # shrunk input: {shrunk:?}\n");
    if !existing.contains(&format!("seed = {seed} ")) {
        existing.push_str(&line);
        let _ = std::fs::write(path, existing);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Defines property tests. Drop-in for the `proptest!` macro for the
/// forms this workspace uses:
///
/// ```
/// use ee360_support::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0.0f64..100.0, b in 0.0f64..100.0) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::prop::run(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |($($pat,)+)| { $body Ok(()) },
            );
        }
    )+};
}

/// Property assertion: fails the current case (triggering shrinking)
/// instead of aborting the whole test run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::prop::TestError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::prop::TestError(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion; see [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::prop::TestError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Property inequality assertion; see [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::prop::TestError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn tuple_strategy_generates_componentwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (0.0f64..1.0, 10usize..20, -5i64..5);
        for _ in 0..200 {
            let (f, u, i) = strat.generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            assert!((10..20).contains(&u));
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = collection::vec(0.0f64..1.0, 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "len = {}", v.len());
        }
    }

    #[test]
    fn shrinking_reaches_simple_counterexample() {
        // The canonical shrink demo: "all values < 500" fails; the shrunk
        // witness should land close to the boundary or at a canonical
        // simple value, not stay at an arbitrary large sample.
        let strat = 0usize..10_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut value = loop {
            let v = strat.generate(&mut rng);
            if v >= 500 {
                break v;
            }
        };
        let fails = |v: &usize| *v >= 500;
        for _ in 0..256 {
            match strat.shrink(&value).into_iter().find(|c| fails(c)) {
                Some(simpler) => value = simpler,
                None => break,
            }
        }
        assert!(value >= 500 && value <= 1000, "shrunk to {value}");
    }

    #[test]
    fn vec_shrink_prefers_shorter() {
        let strat = collection::vec(0usize..100, 1..20);
        let value: Vec<usize> = (0..10).map(|i| i * 7 % 100).collect();
        let candidates = strat.shrink(&value);
        assert!(!candidates.is_empty());
        assert!(candidates[0].len() < value.len());
    }

    #[test]
    fn regression_seed_lines_parse() {
        let dir = std::env::temp_dir().join(format!("ee360-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.txt");
        std::fs::write(
            &path,
            "# comment\ncc 1234abcd # legacy proptest line\nseed = 42 # shrunk input: 7\nseed=99\n",
        )
        .unwrap();
        assert_eq!(read_regression_seeds(&path), vec![42, 99]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn passing_property_runs_clean() {
        run(
            env!("CARGO_MANIFEST_DIR"),
            file!(),
            "support::prop::smoke",
            &(0.0f64..1.0,),
            |(x,)| {
                prop_assert!((0.0..1.0).contains(&x));
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let dir = std::env::temp_dir().join(format!("ee360-prop-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let result = catch_unwind(|| {
            run(
                dir.to_str().unwrap(),
                "demo_failing.rs",
                "support::prop::always_fails",
                &(0usize..100,),
                |(_x,)| Err(TestError("nope".into())),
            );
        });
        let msg = panic_message(&result.unwrap_err());
        assert!(msg.contains("seed:"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
        // The failure was recorded for replay.
        let recorded =
            std::fs::read_to_string(dir.join("proptest-regressions").join("demo_failing.txt"))
                .unwrap();
        assert!(recorded.contains("seed = "), "{recorded}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The macro itself, exercised end to end.
    crate::proptest! {
        #[test]
        fn macro_single_param(x in 0.0f64..10.0) {
            prop_assert!(x >= 0.0);
            prop_assert!(x < 10.0);
        }

        #[test]
        fn macro_multi_param(
            a in 0usize..50,
            b in -1.0f64..=1.0,
            v in crate::prop::collection::vec(0u32..9, 1..5),
        ) {
            prop_assert!(a < 50);
            prop_assert!((-1.0..=1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(v.len(), v.iter().count());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
