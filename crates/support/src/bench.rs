//! Micro-benchmark timing, replacing `criterion` for the bench binaries.
//!
//! Deliberately small: warmup, a fixed iteration budget, and robust
//! order statistics (median / p95) that tolerate scheduler noise better
//! than a mean. Results print as a fixed-width table and can be dumped
//! as JSON for tracking over time.

// lint:allow-file(hot-path-alloc, "bench-report formatting, never on a simulation hot path; reachable only through a method-name collision on `row`")

use std::time::{Duration, Instant};

use crate::json::{Json, ToJson};

/// Timing summary for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations (after warmup).
    pub iterations: u32,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile iteration, nanoseconds.
    pub p95_ns: f64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
}

crate::impl_json_struct!(BenchResult {
    name,
    iterations,
    min_ns,
    median_ns,
    p95_ns,
    mean_ns
});

impl BenchResult {
    /// One human-readable table row.
    pub fn row(&self) -> String {
        format!(
            "{:<32} {:>12} {:>12} {:>12} {:>6}",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.p95_ns),
            format_ns(self.min_ns),
            self.iterations,
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Benchmark harness holding configuration and accumulated results.
#[derive(Debug)]
pub struct Bench {
    warmup: Duration,
    measure: Duration,
    max_iterations: u32,
    results: Vec<BenchResult>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A harness with the default budget: 0.3 s warmup, 1 s measurement,
    /// at most 10 000 iterations per benchmark.
    pub fn new() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            max_iterations: 10_000,
            results: Vec::new(),
        }
    }

    /// Overrides the time budget (warmup, measurement).
    pub fn with_budget(mut self, warmup: Duration, measure: Duration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iterations(mut self, cap: u32) -> Self {
        assert!(cap > 0, "iteration cap must be positive");
        self.max_iterations = cap;
        self
    }

    /// Times `f`, keeping the returned value alive so the work is not
    /// optimised away. Records and returns the summary.
    pub fn run<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &BenchResult {
        // Warmup: run until the warmup budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
        }

        let mut samples_ns: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure
            && samples_ns.len() < self.max_iterations as usize
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples_ns.push(t0.elapsed().as_nanos() as f64);
        }

        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = samples_ns.len().max(1);
        let pick = |q: f64| samples_ns[(((n - 1) as f64) * q).round() as usize];
        let result = BenchResult {
            name: name.to_owned(),
            iterations: n as u32,
            min_ns: samples_ns.first().copied().unwrap_or(0.0),
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
        };
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the results as an aligned table to stdout.
    pub fn print_table(&self) {
        // lint:allow(no-println-in-lib, "the bench table is CLI output by contract; support cannot depend on obs (dependency cycle)")
        println!(
            "{:<32} {:>12} {:>12} {:>12} {:>6}",
            "benchmark", "median", "p95", "min", "iters"
        );
        for r in &self.results {
            // lint:allow(no-println-in-lib, "the bench table is CLI output by contract; support cannot depend on obs (dependency cycle)")
            println!("{}", r.row());
        }
    }

    /// The results as a JSON array (for archiving alongside figures).
    pub fn to_json(&self) -> Json {
        self.results.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Bench {
        Bench::new()
            .with_budget(Duration::from_millis(5), Duration::from_millis(30))
            .with_max_iterations(200)
    }

    #[test]
    fn measures_something_positive() {
        let mut bench = quick();
        let r = bench.run("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(r.iterations > 0);
        assert!(r.min_ns > 0.0);
        assert!(r.median_ns >= r.min_ns);
        assert!(r.p95_ns >= r.median_ns);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut bench = Bench::new()
            .with_budget(Duration::from_millis(1), Duration::from_secs(5))
            .with_max_iterations(10);
        let r = bench.run("capped", || 1 + 1);
        assert!(r.iterations <= 10);
    }

    #[test]
    fn json_output_is_array() {
        let mut bench = quick();
        bench.run("a", || 0);
        bench.run("b", || 0);
        let json = bench.to_json();
        assert_eq!(json.as_array().map(|a| a.len()), Some(2));
        let text = crate::json::to_string(&json).unwrap();
        assert!(text.contains("\"median_ns\""));
    }

    #[test]
    fn rows_are_formatted() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_500.0).ends_with("µs"));
        assert!(format_ns(12_500_000.0).ends_with("ms"));
        assert!(format_ns(2.5e9).ends_with('s'));
    }
}
