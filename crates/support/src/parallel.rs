//! Std-only scoped worker pool.
//!
//! Replaces the `crossbeam`/`parking_lot` pair with `std::thread::scope`
//! and `std::sync::Mutex`: a fixed set of workers pull indices from a
//! shared counter (work stealing via self-scheduling), and results land
//! in their slot so output order never depends on the schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Computes `f(0), f(1), …, f(n - 1)` on `threads` workers and returns
/// the results in index order.
///
/// Work is self-scheduled: each worker repeatedly claims the next undone
/// index, so uneven per-item cost still balances. With `threads == 1`
/// this degrades to a plain sequential loop (no thread spawn).
///
/// # Panics
///
/// Panics if `threads` is zero or any invocation of `f` panics (the
/// panic is propagated once all workers have stopped).
pub fn parallel_map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    return;
                }
                let value = f(idx);
                // A poisoned slot lock cannot leave the Option torn: the
                // only write is this whole-value store, so recover it.
                *slots[idx]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // lint:allow(panic-reachability, "join invariant: the scope above blocks until every worker stored its slot")
                .expect("every index was executed")
        })
        .collect()
}

/// A reasonable worker count for this machine: the logical core count,
/// clamped to `[1, 16]`.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let parallel = parallel_map_indexed(4, 100, |i| i * i);
        let sequential: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_thread_and_empty_work() {
        assert_eq!(parallel_map_indexed(1, 5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map_indexed(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map_indexed(16, 3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn uneven_work_still_completes() {
        let out = parallel_map_indexed(4, 32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let _ = parallel_map_indexed(0, 4, |i| i);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, 16, |i| {
                assert!(i != 9, "boom at {i}");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_positive() {
        assert!((1..=16).contains(&default_threads()));
    }
}
