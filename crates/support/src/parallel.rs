//! Std-only scoped worker pool with chunked work stealing.
//!
//! Replaces the `crossbeam`/`parking_lot` pair with `std::thread::scope`
//! and `std::sync::Mutex`. The index range `0..n` is pre-split into one
//! contiguous chunk per worker; each worker drains its own chunk from
//! the front in small blocks and, when empty, steals the back half of
//! the fullest-by-scan-order victim queue. Results land in their
//! index-addressed slot, so output order never depends on the schedule
//! — the byte-identical replay guarantee survives stealing.
//!
//! Why a deque of *ranges* instead of a deque of tasks: the workload is
//! always `f(i)` over a dense index space, so a `Range<usize>` under a
//! `Mutex` is a complete deque — pop-front is `start += k`, steal-back
//! is `end -= k` — with no allocation and no ABA hazards. Lock traffic
//! is bounded by `n / block` claims plus one scan per steal, not by `n`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Largest block a worker claims from its own queue per lock
/// acquisition. Small enough that late thieves still find work behind a
/// long-running block, large enough to amortise the lock.
const MAX_BLOCK: usize = 32;

/// One worker's queue: the contiguous index range it still owns.
/// The owner pops blocks from the front; thieves steal from the back.
struct WorkQueue {
    range: Mutex<Range<usize>>,
}

impl WorkQueue {
    fn new(range: Range<usize>) -> Self {
        Self {
            range: Mutex::new(range),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Range<usize>> {
        // A poisoned queue lock cannot leave the range torn: both
        // mutations are single-field stores, so recover and continue.
        self.range.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Owner side: claims up to [`MAX_BLOCK`] indices off the front,
    /// but never more than half the remainder, so a concurrent thief
    /// always finds something behind a long-running block.
    fn pop_front_block(&self) -> Option<Range<usize>> {
        let mut r = self.lock();
        let len = r.end - r.start;
        if len == 0 {
            return None;
        }
        let take = len.div_ceil(2).min(MAX_BLOCK);
        let block = r.start..r.start + take;
        r.start += take;
        Some(block)
    }

    /// Thief side: steals the back half (rounded up) in one move.
    fn steal_back_half(&self) -> Option<Range<usize>> {
        let mut r = self.lock();
        let len = r.end - r.start;
        if len == 0 {
            return None;
        }
        let take = len.div_ceil(2);
        let block = r.end - take..r.end;
        r.end -= take;
        Some(block)
    }

    /// Thief side, installing into its own emptied queue.
    fn install(&self, block: Range<usize>) {
        *self.lock() = block;
    }
}

/// Computes `f(0), f(1), …, f(n - 1)` on `threads` workers and returns
/// the results in index order.
///
/// Work is balanced by chunked stealing: worker `w` starts with the
/// `w`-th contiguous share of `0..n`, drains it in blocks, then scans
/// the other queues in a fixed order (`w + 1, w + 2, …`, wrapping) and
/// steals the back half of the first non-empty one. A worker exits only
/// after a full scan finds every queue empty — sound because claimed
/// indices never re-enter a queue and `f` spawns no new work, so an
/// all-empty scan means every index is claimed by someone. With
/// `threads == 1` this degrades to a plain sequential loop (no thread
/// spawn, no locks).
///
/// # Panics
///
/// Panics if `threads` is zero or any invocation of `f` panics (the
/// panic is propagated once all workers have stopped).
// lint:allow(hot-path-alloc, "per-wave setup: the queue and slot vectors are one allocation each per call, amortised over the n-item map they carry")
pub fn parallel_map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let workers = threads.min(n);
    // Deterministic initial split: worker w owns one contiguous share,
    // the first `n % workers` shares one index longer.
    let queues: Vec<WorkQueue> = {
        let base = n / workers;
        let extra = n % workers;
        let mut start = 0;
        (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let q = WorkQueue::new(start..start + len);
                start += len;
                q
            })
            .collect()
    };
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Liveness fast path: workers park-free spin on this count to skip
    // scans once everything is claimed. Correctness never depends on it.
    let remaining = AtomicUsize::new(n);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let remaining = &remaining;
            let f = &f;
            scope.spawn(move || loop {
                // Drain the local queue in blocks.
                while let Some(block) = queues[w].pop_front_block() {
                    let len = block.end - block.start;
                    for idx in block {
                        let value = f(idx);
                        // A poisoned slot lock cannot leave the Option
                        // torn: the only write is this whole-value
                        // store, so recover it.
                        *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                    }
                    remaining.fetch_sub(len, Ordering::Relaxed);
                }
                if remaining.load(Ordering::Relaxed) == 0 {
                    return;
                }
                // Steal: fixed-order scan so the schedule shape (not
                // the results, which are slot-addressed) is the only
                // thing that varies run to run.
                let mut stolen = None;
                for v in 1..workers {
                    if let Some(block) = queues[(w + v) % workers].steal_back_half() {
                        stolen = Some(block);
                        break;
                    }
                }
                match stolen {
                    Some(block) => queues[w].install(block),
                    // Full scan found every queue empty: all indices
                    // are claimed, the claimants will fill their slots.
                    None => return,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // lint:allow(panic-reachability, "join invariant: the scope above blocks until every worker stored its slot")
                .expect("every index was executed")
        })
        .collect()
}

/// A reasonable worker count for this machine: the logical core count,
/// clamped to `[1, 16]`.
pub fn default_threads() -> usize {
    hardware_threads().clamp(1, 16)
}

/// The unclamped logical core count (`available_parallelism`), for
/// reporting actual hardware alongside the clamped pool size.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let parallel = parallel_map_indexed(4, 100, |i| i * i);
        let sequential: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_thread_and_empty_work() {
        assert_eq!(parallel_map_indexed(1, 5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map_indexed(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map_indexed(16, 3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn uneven_work_still_completes() {
        let out = parallel_map_indexed(4, 32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_balances_a_skewed_front_load() {
        // All the heavy work sits in worker 0's initial share; the rest
        // must steal it or the wall time degenerates to sequential.
        // Correctness (the actual assertion): results stay in index
        // order regardless of who computed what.
        let out = parallel_map_indexed(4, 64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn stress_uneven_sizes_across_thread_counts() {
        // The satellite stress shape: pathologically uneven task sizes
        // (one task ~100x the median, long tail of trivial ones), run
        // at 1/4/16 workers. Result order must be deterministic and
        // identical across every thread count.
        let work = |i: usize| {
            let spin = match i % 37 {
                0 => 20_000,
                k if k % 5 == 0 => 1_000,
                _ => 10,
            };
            let mut acc = i as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        };
        let reference: Vec<(usize, u64)> = (0..512).map(work).collect();
        for threads in [1, 4, 16] {
            let out = parallel_map_indexed(threads, 512, work);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn pop_front_never_starves_thieves() {
        // With more than MAX_BLOCK items the owner's first claim must
        // leave work behind for a thief.
        let q = WorkQueue::new(0..100);
        let block = q.pop_front_block().expect("non-empty");
        assert_eq!(block, 0..32);
        let stolen = q.steal_back_half().expect("plenty left");
        assert_eq!(stolen, 66..100);
        assert_eq!(*q.lock(), 32..66);
    }

    #[test]
    fn small_queues_split_rather_than_drain_whole() {
        // Half-rounded-up on both sides: a 3-item queue yields 2 to the
        // owner (leaving 1 to steal) and 2 to a thief (leaving 1).
        let q = WorkQueue::new(10..13);
        assert_eq!(q.pop_front_block(), Some(10..12));
        assert_eq!(q.pop_front_block(), Some(12..13));
        assert_eq!(q.pop_front_block(), None);
        let q2 = WorkQueue::new(10..13);
        assert_eq!(q2.steal_back_half(), Some(11..13));
        assert_eq!(q2.steal_back_half(), Some(10..11));
        assert_eq!(q2.steal_back_half(), None);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let _ = parallel_map_indexed(0, 4, |i| i);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, 16, |i| {
                assert!(i != 9, "boom at {i}");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_positive() {
        assert!((1..=16).contains(&default_threads()));
        assert!(hardware_threads() >= 1);
    }
}
