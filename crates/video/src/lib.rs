//! Video model for tile-based 360° streaming.
//!
//! Implements Section III-A of the paper: each video is a sequence of
//! `L = 1 s` segments, each segment is divided into `C` tiles (4 × 8 by
//! default), every tile is encoded at `V = 5` quality levels, and Ptiles are
//! additionally encoded at `F` frame rates.
//!
//! Modules:
//!
//! * [`ladder`] — quality levels (CRF 38..18) and the frame-rate ladder
//!   (original rate plus 10%/20%/30% reductions),
//! * [`content`] — SI/TI perceptual content descriptors (ITU-T P.910),
//! * [`catalog`] — the eight test videos of Table III,
//! * [`segment`] — segment timing and per-segment content,
//! * [`size_model`] — encoded sizes for tiles, Ptiles, background blocks
//!   and whole-frame encodings, calibrated to the paper's Fig. 8.
//!
//! # Example
//!
//! ```
//! use ee360_video::ladder::{EncodingLadder, QualityLevel};
//! use ee360_video::size_model::SizeModel;
//! use ee360_video::content::SiTi;
//!
//! let model = SizeModel::paper_default();
//! let content = SiTi::new(60.0, 25.0);
//! // One 3×3-tile FoV region at the top quality, full frame rate:
//! let ptile = model.region_bits(9.0 / 32.0, 1, QualityLevel::Q5, 30.0, content);
//! let ctile = model.region_bits(9.0 / 32.0, 9, QualityLevel::Q5, 30.0, content);
//! assert!(ptile < ctile); // the Ptile always compresses better
//! let _ = EncodingLadder::paper_default();
//! ```

pub mod catalog;
pub mod content;
pub mod error;
pub mod ladder;
pub mod manifest;
pub mod segment;
pub mod size_model;

pub use catalog::{BehaviorProfile, VideoCatalog, VideoSpec};
pub use content::SiTi;
pub use error::VideoError;
pub use ladder::{EncodingLadder, FrameRate, QualityLevel};
pub use manifest::{Representation, RepresentationKind, SegmentManifest, VideoManifest};
pub use segment::{SegmentContent, SegmentTimeline, SEGMENT_DURATION_SEC};
pub use size_model::SizeModel;
