//! The test-video catalog (Table III of the paper).
//!
//! Eight 4K 30 fps videos spanning sports, performance and exploration
//! content. The paper notes (Section V-B) that users were instructed to
//! focus on the content for videos 1–4, while for videos 5–8 they were free
//! to explore — which drives both the Ptile count (Fig. 7) and the
//! switching-speed distribution (Fig. 5). Each spec carries the per-video
//! SI/TI centre and motion parameters that the trace generator and content
//! model consume.

use crate::content::SiTi;
use crate::error::VideoError;

/// Whether users focus on the director's intended view or explore freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorProfile {
    /// Users are instructed to focus on the video content (videos 1–4):
    /// viewing centers cluster tightly around a few salient regions.
    Focused,
    /// Users explore freely (videos 5–8): viewing centers spread widely and
    /// switch more often.
    Exploratory,
}

ee360_support::impl_json_enum!(BehaviorProfile {
    Focused,
    Exploratory
});

/// One test video (a row of Table III plus the modelling parameters the
/// synthetic substrate needs).
#[derive(Debug, Clone, PartialEq)]
pub struct VideoSpec {
    /// Table III video id, 1-based.
    pub id: usize,
    /// Human-readable content label.
    pub name: String,
    /// Video length in seconds.
    pub duration_sec: u32,
    /// Viewing-behaviour profile (focused vs. exploratory).
    pub behavior: BehaviorProfile,
    /// Mean SI/TI of the video (per-segment values vary around this).
    pub base_si_ti: SiTi,
    /// How many salient regions users' attention rotates between.
    pub hotspot_count: usize,
    /// Mean dwell time on one salient region, seconds.
    pub mean_dwell_sec: f64,
    /// Typical smooth-pursuit speed while tracking action, degrees/second.
    pub pursuit_speed_deg_s: f64,
}

ee360_support::impl_json_struct!(VideoSpec {
    id,
    name,
    duration_sec,
    behavior,
    base_si_ti,
    hotspot_count,
    mean_dwell_sec,
    pursuit_speed_deg_s
});

impl VideoSpec {
    /// Number of one-second segments in the video.
    pub fn segment_count(&self) -> usize {
        self.duration_sec as usize
    }
}

/// The eight-video catalog of Table III.
///
/// # Example
///
/// ```
/// use ee360_video::catalog::VideoCatalog;
/// let catalog = VideoCatalog::paper_default();
/// assert_eq!(catalog.videos().len(), 8);
/// assert_eq!(catalog.video(8).unwrap().name, "Freestyle Skiing");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VideoCatalog {
    videos: Vec<VideoSpec>,
}

ee360_support::impl_json_struct!(VideoCatalog { videos });

impl VideoCatalog {
    /// Builds the catalog from explicit specs.
    ///
    /// # Panics
    ///
    /// Panics if the specs are empty or their ids are not unique — the
    /// infallible wrapper around [`VideoCatalog::try_new`].
    pub fn new(videos: Vec<VideoSpec>) -> Self {
        match Self::try_new(videos) {
            Ok(catalog) => catalog,
            // lint:allow(no-panic-paths, "documented panic: infallible wrapper; try_new is the graceful API")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`VideoCatalog::new`]: an empty spec list or a duplicated
    /// id comes back as a [`VideoError`] instead of panicking.
    pub fn try_new(videos: Vec<VideoSpec>) -> Result<Self, VideoError> {
        if videos.is_empty() {
            return Err(VideoError::EmptyCatalog);
        }
        let mut ids: Vec<usize> = videos.iter().map(|v| v.id).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(VideoError::DuplicateVideoId { id: dup[0] });
        }
        Ok(Self { videos })
    }

    /// Table III: the eight test videos with lengths as published.
    ///
    /// SI/TI centres are placed to mirror Fig. 4a: sports content (boxing,
    /// football, skiing) carries high TI, performances (gala, dancing) high
    /// SI with moderate TI, and nature content lower TI.
    pub fn paper_default() -> Self {
        let spec = |id: usize,
                    name: &str,
                    mins: u32,
                    secs: u32,
                    behavior: BehaviorProfile,
                    si: f64,
                    ti: f64,
                    hotspots: usize,
                    dwell: f64,
                    pursuit: f64| VideoSpec {
            id,
            name: name.to_owned(),
            duration_sec: mins * 60 + secs,
            behavior,
            base_si_ti: SiTi::new(si, ti),
            hotspot_count: hotspots,
            mean_dwell_sec: dwell,
            pursuit_speed_deg_s: pursuit,
        };
        Self::new(vec![
            spec(
                1,
                "Basketball Match",
                6,
                1,
                BehaviorProfile::Focused,
                62.0,
                28.0,
                3,
                4.0,
                20.0,
            ),
            spec(
                2,
                "Showtime Boxing",
                2,
                52,
                BehaviorProfile::Focused,
                55.0,
                32.0,
                1,
                8.0,
                15.0,
            ),
            spec(
                3,
                "Festival Gala",
                6,
                13,
                BehaviorProfile::Focused,
                78.0,
                18.0,
                2,
                7.0,
                12.0,
            ),
            spec(
                4,
                "Idol Dancing",
                4,
                38,
                BehaviorProfile::Focused,
                70.0,
                22.0,
                1,
                9.0,
                10.0,
            ),
            spec(
                5,
                "Moving Rhinos",
                4,
                52,
                BehaviorProfile::Exploratory,
                48.0,
                12.0,
                3,
                10.0,
                38.0,
            ),
            spec(
                6,
                "Football Match",
                2,
                44,
                BehaviorProfile::Exploratory,
                60.0,
                30.0,
                2,
                8.0,
                42.0,
            ),
            spec(
                7,
                "Tahiti Surf",
                3,
                25,
                BehaviorProfile::Exploratory,
                45.0,
                24.0,
                3,
                9.0,
                40.0,
            ),
            spec(
                8,
                "Freestyle Skiing",
                3,
                21,
                BehaviorProfile::Exploratory,
                52.0,
                34.0,
                2,
                8.0,
                45.0,
            ),
        ])
    }

    /// All videos in id order.
    pub fn videos(&self) -> &[VideoSpec] {
        &self.videos
    }

    /// Looks up a video by its Table III id.
    pub fn video(&self, id: usize) -> Option<&VideoSpec> {
        self.videos.iter().find(|v| v.id == id)
    }

    /// Like [`VideoCatalog::video`], but an unknown id is a typed error
    /// naming the id — for callers that propagate with `?`.
    pub fn require(&self, id: usize) -> Result<&VideoSpec, VideoError> {
        self.video(id).ok_or(VideoError::UnknownVideo { id })
    }

    /// Videos with the given behaviour profile.
    pub fn with_behavior(&self, behavior: BehaviorProfile) -> Vec<&VideoSpec> {
        self.videos
            .iter()
            .filter(|v| v.behavior == behavior)
            .collect()
    }
}

impl Default for VideoCatalog {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lengths() {
        let c = VideoCatalog::paper_default();
        let lengths: Vec<u32> = c.videos().iter().map(|v| v.duration_sec).collect();
        // 6:01, 2:52, 6:13, 4:38, 4:52, 2:44, 3:25, 3:21
        assert_eq!(lengths, vec![361, 172, 373, 278, 292, 164, 205, 201]);
    }

    #[test]
    fn behavior_split_matches_paper() {
        let c = VideoCatalog::paper_default();
        let focused = c.with_behavior(BehaviorProfile::Focused);
        let exploratory = c.with_behavior(BehaviorProfile::Exploratory);
        assert_eq!(
            focused.iter().map(|v| v.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(
            exploratory.iter().map(|v| v.id).collect::<Vec<_>>(),
            vec![5, 6, 7, 8]
        );
    }

    #[test]
    fn lookup_by_id() {
        let c = VideoCatalog::paper_default();
        assert_eq!(c.video(2).unwrap().name, "Showtime Boxing");
        assert!(c.video(9).is_none());
    }

    #[test]
    fn segment_counts() {
        let c = VideoCatalog::paper_default();
        assert_eq!(c.video(1).unwrap().segment_count(), 361);
        assert_eq!(c.video(6).unwrap().segment_count(), 164);
    }

    #[test]
    fn sports_have_high_ti() {
        let c = VideoCatalog::paper_default();
        // Boxing, football and skiing should read as high-motion content.
        for id in [2, 6, 8] {
            assert!(c.video(id).unwrap().base_si_ti.ti() >= 28.0, "video {id}");
        }
        // Rhinos is calm.
        assert!(c.video(5).unwrap().base_si_ti.ti() <= 15.0);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_panic() {
        let c = VideoCatalog::paper_default();
        let mut vids = c.videos().to_vec();
        vids[1].id = 1;
        let _ = VideoCatalog::new(vids);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_catalog_panics() {
        let _ = VideoCatalog::new(Vec::new());
    }

    #[test]
    fn serde_roundtrip() {
        let c = VideoCatalog::paper_default();
        let json = ee360_support::json::to_string(&c).unwrap();
        let back: VideoCatalog = ee360_support::json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
