//! Spatial and temporal perceptual information (ITU-T P.910).
//!
//! The paper's QoE model (Eq. 3) takes the video's **SI** (spatial
//! information: how much spatial detail the frames carry) and **TI**
//! (temporal information: how much motion there is) as inputs; Eq. 4's
//! frame-rate sensitivity `α = S_fov / TI` also depends on TI.

/// SI/TI content descriptor for one video segment.
///
/// Typical ranges (Fig. 4a of the paper): SI in roughly `[20, 100]`,
/// TI in roughly `[5, 70]`.
///
/// # Example
///
/// ```
/// use ee360_video::content::SiTi;
/// let calm = SiTi::new(40.0, 8.0);
/// let sport = SiTi::new(70.0, 45.0);
/// assert!(sport.ti() > calm.ti());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiTi {
    si: f64,
    ti: f64,
}

ee360_support::impl_json_struct!(SiTi { si, ti });

impl SiTi {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or not finite. TI may be zero for
    /// a perfectly static scene; SI of a real frame is always positive.
    pub fn new(si: f64, ti: f64) -> Self {
        assert!(si.is_finite() && si >= 0.0, "SI must be non-negative");
        assert!(ti.is_finite() && ti >= 0.0, "TI must be non-negative");
        Self { si, ti }
    }

    /// Spatial information.
    pub fn si(&self) -> f64 {
        self.si
    }

    /// Temporal information.
    pub fn ti(&self) -> f64 {
        self.ti
    }

    /// A relative "encoding difficulty" factor around 1.0: complex, fast
    /// content costs more bits at equal quality.
    ///
    /// Normalised so that the reference content (SI 60, TI 25 — the middle
    /// of Fig. 4a's cloud) maps to exactly 1.0. Clamped to `[0.4, 2.0]` so a
    /// degenerate segment cannot blow up the size model.
    pub fn encoding_difficulty(&self) -> f64 {
        const SI_REF: f64 = 60.0;
        const TI_REF: f64 = 25.0;
        let raw = 0.45 * (self.si / SI_REF) + 0.55 * (self.ti / TI_REF);
        raw.clamp(0.4, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn reference_content_has_unit_difficulty() {
        let c = SiTi::new(60.0, 25.0);
        assert!((c.encoding_difficulty() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_motion_is_harder() {
        let slow = SiTi::new(60.0, 10.0);
        let fast = SiTi::new(60.0, 50.0);
        assert!(fast.encoding_difficulty() > slow.encoding_difficulty());
    }

    #[test]
    fn more_detail_is_harder() {
        let plain = SiTi::new(30.0, 25.0);
        let busy = SiTi::new(90.0, 25.0);
        assert!(busy.encoding_difficulty() > plain.encoding_difficulty());
    }

    #[test]
    fn difficulty_is_clamped() {
        let degenerate = SiTi::new(0.0, 0.0);
        assert_eq!(degenerate.encoding_difficulty(), 0.4);
        let extreme = SiTi::new(1000.0, 1000.0);
        assert_eq!(extreme.encoding_difficulty(), 2.0);
    }

    #[test]
    #[should_panic(expected = "SI must be non-negative")]
    fn negative_si_panics() {
        let _ = SiTi::new(-1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "TI must be non-negative")]
    fn nan_ti_panics() {
        let _ = SiTi::new(10.0, f64::NAN);
    }

    #[test]
    fn serde_roundtrip() {
        let c = SiTi::new(55.0, 33.0);
        let json = ee360_support::json::to_string(&c).unwrap();
        let back: SiTi = ee360_support::json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    proptest! {
        #[test]
        fn difficulty_bounded(si in 0.0f64..200.0, ti in 0.0f64..200.0) {
            let d = SiTi::new(si, ti).encoding_difficulty();
            prop_assert!((0.4..=2.0).contains(&d));
        }

        #[test]
        fn difficulty_monotone_in_ti(si in 1.0f64..100.0, ti in 1.0f64..40.0) {
            let lo = SiTi::new(si, ti).encoding_difficulty();
            let hi = SiTi::new(si, ti + 5.0).encoding_difficulty();
            prop_assert!(hi >= lo);
        }
    }
}
