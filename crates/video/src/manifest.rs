//! A DASH-like manifest: what the server advertises to clients.
//!
//! The paper's client "downloads the metadata for the first H video
//! segments during the startup period" (Section IV-C). This module models
//! that metadata concretely: per segment, the list of downloadable
//! representations — conventional tiles, Ptiles at every (quality,
//! frame-rate) tuple, and the low-quality background blocks — each with
//! its exact byte size, so a client can plan without touching the media.

use crate::content::SiTi;
use crate::error::VideoError;
use crate::ladder::{EncodingLadder, QualityLevel};
use crate::segment::SegmentTimeline;
use crate::size_model::SizeModel;

/// What kind of spatial unit a representation encodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepresentationKind {
    /// One conventional grid tile (the Ctile unit).
    ConventionalTile {
        /// Area of one tile as a fraction of the frame.
        tile_area: f64,
    },
    /// A Ptile covering `area` of the frame as a single tile.
    Ptile {
        /// Ptile area fraction.
        area: f64,
    },
    /// A low-quality background block.
    BackgroundBlock {
        /// Block area fraction.
        area: f64,
    },
    /// The whole frame (Nontile unit).
    WholeFrame,
}

// Externally tagged, matching serde's default enum encoding:
// `"WholeFrame"` for the unit variant, `{"Ptile":{"area":0.4}}` for the
// struct variants.
impl ee360_support::json::ToJson for RepresentationKind {
    fn to_json(&self) -> ee360_support::json::Json {
        use ee360_support::json::Json;
        let tagged = |tag: &str, field: &str, value: f64| {
            Json::Obj(vec![(
                tag.to_owned(),
                Json::Obj(vec![(field.to_owned(), value.to_json())]),
            )])
        };
        match self {
            Self::ConventionalTile { tile_area } => {
                tagged("ConventionalTile", "tile_area", *tile_area)
            }
            Self::Ptile { area } => tagged("Ptile", "area", *area),
            Self::BackgroundBlock { area } => tagged("BackgroundBlock", "area", *area),
            Self::WholeFrame => Json::Str("WholeFrame".to_owned()),
        }
    }
}

impl ee360_support::json::FromJson for RepresentationKind {
    fn from_json(v: &ee360_support::json::Json) -> Result<Self, ee360_support::json::JsonError> {
        use ee360_support::json::{field, Json, JsonError};
        match v {
            Json::Str(s) if s == "WholeFrame" => Ok(Self::WholeFrame),
            Json::Str(other) => Err(JsonError::UnknownVariant(other.clone())),
            Json::Obj(pairs) if pairs.len() == 1 => {
                let (tag, inner) = &pairs[0];
                match tag.as_str() {
                    "ConventionalTile" => Ok(Self::ConventionalTile {
                        tile_area: field(inner, "tile_area")?,
                    }),
                    "Ptile" => Ok(Self::Ptile {
                        area: field(inner, "area")?,
                    }),
                    "BackgroundBlock" => Ok(Self::BackgroundBlock {
                        area: field(inner, "area")?,
                    }),
                    other => Err(JsonError::UnknownVariant(other.to_owned())),
                }
            }
            _ => Err(JsonError::Type {
                expected: "RepresentationKind string or single-key object",
                found: "other",
            }),
        }
    }
}

/// One downloadable representation of one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Representation {
    /// What this representation encodes.
    pub kind: RepresentationKind,
    /// Quality level.
    pub quality: QualityLevel,
    /// Encoded frame rate, fps.
    pub fps: f64,
    /// Exact payload size in bits.
    pub bits: f64,
}

ee360_support::impl_json_struct!(Representation {
    kind,
    quality,
    fps,
    bits
});

/// The advertised metadata of one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentManifest {
    /// Zero-based segment index.
    pub index: usize,
    /// The segment's SI/TI (clients feed this into the QoE model).
    pub si_ti: SiTi,
    /// Every representation the server stores for this segment.
    pub representations: Vec<Representation>,
}

ee360_support::impl_json_struct!(SegmentManifest {
    index,
    si_ti,
    representations
});

impl SegmentManifest {
    /// The cheapest representation of a kind-and-quality class, if any.
    pub fn find(
        &self,
        quality: QualityLevel,
        fps: f64,
        predicate: impl Fn(&RepresentationKind) -> bool,
    ) -> Option<&Representation> {
        self.representations
            .iter()
            .filter(|r| r.quality == quality && (r.fps - fps).abs() < 1e-9 && predicate(&r.kind))
            .min_by(|a, b| a.bits.total_cmp(&b.bits))
    }
}

/// The whole video's manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoManifest {
    video_id: usize,
    segments: Vec<SegmentManifest>,
}

ee360_support::impl_json_struct!(VideoManifest { video_id, segments });

impl VideoManifest {
    /// Builds the manifest for a timeline: conventional tiles and the
    /// whole-frame representation at every quality; one Ptile family per
    /// provided `(area, fps-ladder)` description.
    ///
    /// `ptile_areas` lists the Ptile area fractions constructed for each
    /// segment (empty slice ⇒ no Ptile representations for that segment).
    ///
    /// # Panics
    ///
    /// Panics if `ptile_areas.len()` differs from the timeline length —
    /// the infallible wrapper around [`VideoManifest::try_build`].
    pub fn build(
        timeline: &SegmentTimeline,
        model: &SizeModel,
        ladder: &EncodingLadder,
        ptile_areas: &[Vec<f64>],
    ) -> Self {
        match Self::try_build(timeline, model, ladder, ptile_areas) {
            Ok(manifest) => manifest,
            // lint:allow(no-panic-paths, "documented panic: infallible wrapper; try_build is the graceful API")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`VideoManifest::build`]: a Ptile-area list whose length
    /// does not match the timeline comes back as a [`VideoError`].
    pub fn try_build(
        timeline: &SegmentTimeline,
        model: &SizeModel,
        ladder: &EncodingLadder,
        ptile_areas: &[Vec<f64>],
    ) -> Result<Self, VideoError> {
        if ptile_areas.len() != timeline.len() {
            return Err(VideoError::PtileAreaMismatch {
                expected: timeline.len(),
                got: ptile_areas.len(),
            });
        }
        let grid_tile_area = 1.0 / 32.0;
        let fps_max = ladder.max_frame_rate().fps();
        let segments = timeline
            .segments()
            .iter()
            .map(|seg| {
                let mut reps = Vec::new();
                for q in QualityLevel::ALL {
                    // One conventional tile (all 32 are the same size class).
                    reps.push(Representation {
                        kind: RepresentationKind::ConventionalTile {
                            tile_area: grid_tile_area,
                        },
                        quality: q,
                        fps: fps_max,
                        bits: model.region_bits(grid_tile_area, 1, q, fps_max, seg.si_ti),
                    });
                    // Whole frame.
                    reps.push(Representation {
                        kind: RepresentationKind::WholeFrame,
                        quality: q,
                        fps: fps_max,
                        bits: model.region_bits(1.0, 1, q, fps_max, seg.si_ti),
                    });
                }
                // Ptile families at the full (quality × frame-rate) ladder.
                for &area in &ptile_areas[seg.index] {
                    for (q, f) in ladder.variants() {
                        reps.push(Representation {
                            kind: RepresentationKind::Ptile { area },
                            quality: q,
                            fps: f.fps(),
                            bits: model.region_bits(area, 1, q, f.fps(), seg.si_ti),
                        });
                    }
                    // Matching background blocks at the lowest quality.
                    let bg_area = (1.0 - area).max(0.0);
                    if bg_area > 1e-9 {
                        reps.push(Representation {
                            kind: RepresentationKind::BackgroundBlock {
                                area: bg_area / 3.0,
                            },
                            quality: QualityLevel::Q1,
                            fps: fps_max,
                            bits: model.region_bits(
                                bg_area,
                                3,
                                QualityLevel::Q1,
                                fps_max,
                                seg.si_ti,
                            ) / 3.0,
                        });
                    }
                }
                SegmentManifest {
                    index: seg.index,
                    si_ti: seg.si_ti,
                    representations: reps,
                }
            })
            .collect();
        Ok(Self {
            video_id: timeline.video_id(),
            segments,
        })
    }

    /// The video id.
    pub fn video_id(&self) -> usize {
        self.video_id
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` for an empty (zero-segment) manifest.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// One segment's manifest.
    pub fn segment(&self, index: usize) -> Option<&SegmentManifest> {
        self.segments.get(index)
    }

    /// The startup metadata window: the first `h` segments (Section IV-C
    /// step (a) fetches these before playback starts).
    pub fn startup_window(&self, h: usize) -> &[SegmentManifest] {
        &self.segments[..h.min(self.segments.len())]
    }

    /// Total advertised bytes across all representations (a server-storage
    /// figure: the cost of hosting the Ptile ladder).
    pub fn total_stored_bits(&self) -> f64 {
        self.segments
            .iter()
            .flat_map(|s| s.representations.iter())
            .map(|r| r.bits)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::VideoCatalog;

    fn manifest() -> VideoManifest {
        let catalog = VideoCatalog::paper_default();
        let spec = catalog.video(6).unwrap();
        let timeline = SegmentTimeline::for_video(spec);
        let areas = vec![vec![9.0 / 32.0]; timeline.len()];
        VideoManifest::build(
            &timeline,
            &SizeModel::paper_default(),
            &EncodingLadder::paper_default(),
            &areas,
        )
    }

    #[test]
    fn one_manifest_entry_per_segment() {
        let m = manifest();
        assert_eq!(m.len(), 164);
        assert!(!m.is_empty());
        assert_eq!(m.video_id(), 6);
        assert!(m.segment(0).is_some());
        assert!(m.segment(164).is_none());
    }

    #[test]
    fn representation_counts() {
        let m = manifest();
        let seg = m.segment(0).unwrap();
        // 5 qualities × (tile + whole frame) + 5×4 Ptile tuples + 1 bg.
        assert_eq!(seg.representations.len(), 10 + 20 + 1);
    }

    #[test]
    fn ptile_reps_cover_full_ladder() {
        let m = manifest();
        let seg = m.segment(3).unwrap();
        for q in QualityLevel::ALL {
            for fps in [21.0, 24.0, 27.0, 30.0] {
                assert!(
                    seg.find(q, fps, |k| matches!(k, RepresentationKind::Ptile { .. }))
                        .is_some(),
                    "missing Ptile {q:?}@{fps}"
                );
            }
        }
    }

    #[test]
    fn find_returns_matching_quality() {
        let m = manifest();
        let seg = m.segment(0).unwrap();
        let rep = seg
            .find(QualityLevel::Q4, 30.0, |k| {
                matches!(k, RepresentationKind::WholeFrame)
            })
            .unwrap();
        assert_eq!(rep.quality, QualityLevel::Q4);
        assert!(rep.bits > 0.0);
    }

    #[test]
    fn startup_window_clamps() {
        let m = manifest();
        assert_eq!(m.startup_window(5).len(), 5);
        assert_eq!(m.startup_window(10_000).len(), 164);
    }

    #[test]
    fn reduced_fps_ptile_is_smaller() {
        let m = manifest();
        let seg = m.segment(0).unwrap();
        let is_ptile = |k: &RepresentationKind| matches!(k, RepresentationKind::Ptile { .. });
        let full = seg.find(QualityLevel::Q5, 30.0, is_ptile).unwrap();
        let reduced = seg.find(QualityLevel::Q5, 21.0, is_ptile).unwrap();
        assert!(reduced.bits < full.bits);
    }

    #[test]
    fn storage_cost_is_positive_and_scales() {
        let m = manifest();
        let total = m.total_stored_bits();
        assert!(total > 0.0);
        // Hosting the Ptile ladder costs real storage: more than the plain
        // whole-frame catalog alone.
        let whole_only: f64 = m
            .segments
            .iter()
            .flat_map(|s| s.representations.iter())
            .filter(|r| matches!(r.kind, RepresentationKind::WholeFrame))
            .map(|r| r.bits)
            .sum();
        assert!(total > whole_only);
    }

    #[test]
    #[should_panic(expected = "one Ptile-area list per segment")]
    fn mismatched_areas_panic() {
        let catalog = VideoCatalog::paper_default();
        let timeline = SegmentTimeline::for_video(catalog.video(6).unwrap());
        let _ = VideoManifest::build(
            &timeline,
            &SizeModel::paper_default(),
            &EncodingLadder::paper_default(),
            &[],
        );
    }

    mod properties {
        use super::*;
        use ee360_support::prelude::*;

        proptest! {
            #[test]
            fn find_never_mixes_quality_or_fps(
                seg in 0usize..160,
                q_idx in 1usize..=5,
                fps_idx in 0usize..4,
            ) {
                let m = super::manifest();
                let q = QualityLevel::from_index(q_idx).unwrap();
                let fps = [21.0, 24.0, 27.0, 30.0][fps_idx];
                if let Some(rep) = m.segment(seg).unwrap().find(q, fps, |_| true) {
                    prop_assert_eq!(rep.quality, q);
                    prop_assert!((rep.fps - fps).abs() < 1e-9);
                    prop_assert!(rep.bits > 0.0);
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let catalog = VideoCatalog::paper_default();
        let spec = catalog.video(2).unwrap();
        let timeline = SegmentTimeline::for_video(spec);
        let areas = vec![vec![]; timeline.len()];
        let m = VideoManifest::build(
            &timeline,
            &SizeModel::paper_default(),
            &EncodingLadder::paper_default(),
            &areas,
        );
        let json = ee360_support::json::to_string(&m).unwrap();
        let back: VideoManifest = ee360_support::json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
