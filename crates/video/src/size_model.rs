//! Encoded-size model for tiles, Ptiles and whole-frame encodings.
//!
//! The paper encodes with FFmpeg/x264 at CRF 38..18; we cannot run x264
//! here, so this module provides an empirical rate model calibrated to the
//! paper's published measurements (see DESIGN.md, substitution table):
//!
//! * **Base rate** `R(v)`: bits per second for the whole 4K frame encoded
//!   as a single tile at quality `v` and reference content, doubling per
//!   quality level (0.8 → 12.8 Mbps), consistent with the CRF-step rule of
//!   thumb and the LTE traces the paper streams over.
//! * **Tiling penalty**: splitting an area into `n` independent tiles adds
//!   a fixed per-tile overhead (headers, closed GOPs, lost cross-tile
//!   prediction), so a region of area fraction `a` cut into tiles of area
//!   `A = a/n` costs `pen(A, v) = 1 + k(v)·(1/A − 1)` times the ideal. The
//!   per-quality coefficients `k(v)` are calibrated so that the Ptile/Ctile
//!   size ratio of a 3×3-tile FoV reproduces Fig. 8's medians exactly:
//!   62%, 57%, 47%, 35%, 27% at quality 5..1.
//! * **Frame-rate factor** `(f/30)^0.85`: dropping frames saves slightly
//!   less than proportionally because the remaining frames predict worse.
//! * **Content factor**: [`SiTi::encoding_difficulty`] scales sizes with
//!   content complexity, which is what spreads Fig. 8's CDFs.

use crate::content::SiTi;
use crate::ladder::QualityLevel;
use crate::segment::SEGMENT_DURATION_SEC;

/// Fig. 8 median Ptile/Ctile size ratios at quality 1..5 (paper values
/// 27%, 35%, 47%, 57%, 62%). The tiling-overhead coefficients are derived
/// from these.
pub const FIG8_MEDIAN_RATIOS: [f64; 5] = [0.27, 0.35, 0.47, 0.57, 0.62];

/// Encoded-size model. See the module docs for the calibration story.
///
/// # Example
///
/// ```
/// use ee360_video::size_model::SizeModel;
/// use ee360_video::ladder::QualityLevel;
/// use ee360_video::content::SiTi;
///
/// let m = SizeModel::paper_default();
/// let c = SiTi::new(60.0, 25.0);
/// // Whole frame at the top quality costs more than at the bottom.
/// let hi = m.region_bits(1.0, 1, QualityLevel::Q5, 30.0, c);
/// let lo = m.region_bits(1.0, 1, QualityLevel::Q1, 30.0, c);
/// assert!(hi > 10.0 * lo);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SizeModel {
    /// Whole-frame bits per second at reference content, quality 1..5.
    base_rate_bps: [f64; 5],
    /// Per-quality tiling-overhead coefficients `k(v)`, quality 1..5.
    tiling_overhead: [f64; 5],
    /// Exponent of the frame-rate size factor.
    framerate_exponent: f64,
    /// Reference (original) frame rate in fps.
    reference_fps: f64,
}

ee360_support::impl_json_struct!(SizeModel {
    base_rate_bps,
    tiling_overhead,
    framerate_exponent,
    reference_fps
});

impl SizeModel {
    /// The calibrated model used throughout the evaluation.
    pub fn paper_default() -> Self {
        // k(v) solves (1 + (32/9 − 1)k) / (1 + (32 − 1)k) = FIG8 ratio for a
        // 3×3-of-4×8 FoV region; see `fig8_ratios_reproduced` below.
        const FOV_AREA: f64 = 9.0 / 32.0;
        let k: Vec<f64> = FIG8_MEDIAN_RATIOS
            .iter()
            .map(|&r| {
                let ptile_term = 1.0 / FOV_AREA - 1.0; // 1 tile of area 9/32
                let ctile_term = 9.0 / FOV_AREA - 1.0; // 9 tiles of area 1/32
                (1.0 - r) / (ctile_term * r - ptile_term)
            })
            .collect();
        Self {
            // Whole-frame payload rates per quality, calibrated so every
            // scheme's segment sizes sit in the paper's LTE traces'
            // feasible band (trace 2 averages 3.9 Mbps): Ctile lands on
            // mid qualities with occasional stalls, Ptile reaches the top
            // rung, and Nontile saturates the budget — the paper's
            // observed operating points.
            base_rate_bps: [0.3e6, 0.8e6, 1.8e6, 3.6e6, 7.6e6],
            tiling_overhead: [k[0], k[1], k[2], k[3], k[4]],
            framerate_exponent: 0.85,
            reference_fps: 30.0,
        }
    }

    /// Whole-frame bits per second at a quality level (reference content,
    /// full frame rate).
    pub fn whole_frame_bps(&self, q: QualityLevel) -> f64 {
        self.base_rate_bps[q.index() - 1]
    }

    /// Tiling penalty for tiles of `per_tile_area` (fraction of the full
    /// frame, in `(0, 1]`) at quality `q`. Always ≥ 1; exactly 1 for a
    /// whole-frame encode.
    ///
    /// # Panics
    ///
    /// Panics if `per_tile_area` is not in `(0, 1]`.
    pub fn penalty(&self, per_tile_area: f64, q: QualityLevel) -> f64 {
        assert!(
            per_tile_area > 0.0 && per_tile_area <= 1.0,
            "per-tile area fraction must be in (0, 1], got {per_tile_area}"
        );
        let k = self.tiling_overhead[q.index() - 1];
        1.0 + k * (1.0 / per_tile_area - 1.0)
    }

    /// Frame-rate size factor: 1.0 at the reference rate, sublinear below.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn framerate_factor(&self, fps: f64) -> f64 {
        assert!(fps > 0.0, "frame rate must be positive");
        (fps / self.reference_fps).powf(self.framerate_exponent)
    }

    /// Encoded size, in bits, of one `L = 1 s` segment's worth of a region.
    ///
    /// * `area_frac` — the region's fraction of the full frame, `(0, 1]`;
    /// * `n_tiles` — how many independent tiles the region is cut into;
    /// * `q` — quality level;
    /// * `fps` — encoded frame rate;
    /// * `content` — the segment's SI/TI.
    ///
    /// # Panics
    ///
    /// Panics if `area_frac` is outside `(0, 1]` or `n_tiles` is zero.
    pub fn region_bits(
        &self,
        area_frac: f64,
        n_tiles: usize,
        q: QualityLevel,
        fps: f64,
        content: SiTi,
    ) -> f64 {
        assert!(
            area_frac > 0.0 && area_frac <= 1.0,
            "area fraction must be in (0, 1], got {area_frac}"
        );
        assert!(n_tiles > 0, "a region must have at least one tile");
        let per_tile_area = area_frac / n_tiles as f64;
        self.whole_frame_bps(q)
            * area_frac
            * self.penalty(per_tile_area, q)
            * self.framerate_factor(fps)
            * content.encoding_difficulty()
            * SEGMENT_DURATION_SEC
    }

    /// The reference frame rate the model is normalised to.
    pub fn reference_fps(&self) -> f64 {
        self.reference_fps
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    fn model() -> SizeModel {
        SizeModel::paper_default()
    }

    fn ref_content() -> SiTi {
        SiTi::new(60.0, 25.0)
    }

    #[test]
    fn fig8_ratios_reproduced() {
        // The Ptile/Ctile size ratio for a 3×3 FoV region must match the
        // paper's Fig. 8 medians at every quality level (content and frame
        // rate cancel in the ratio).
        let m = model();
        let area = 9.0 / 32.0;
        for (i, q) in QualityLevel::ALL.iter().enumerate() {
            let ptile = m.region_bits(area, 1, *q, 30.0, ref_content());
            let ctile = m.region_bits(area, 9, *q, 30.0, ref_content());
            let ratio = ptile / ctile;
            assert!(
                (ratio - FIG8_MEDIAN_RATIOS[i]).abs() < 1e-9,
                "quality {:?}: ratio {} vs paper {}",
                q,
                ratio,
                FIG8_MEDIAN_RATIOS[i]
            );
        }
    }

    #[test]
    fn whole_frame_has_no_penalty() {
        let m = model();
        for q in QualityLevel::ALL {
            assert!((m.penalty(1.0, q) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn penalty_grows_for_smaller_tiles() {
        let m = model();
        for q in QualityLevel::ALL {
            assert!(m.penalty(1.0 / 32.0, q) > m.penalty(9.0 / 32.0, q));
            assert!(m.penalty(9.0 / 32.0, q) > m.penalty(1.0, q));
        }
    }

    #[test]
    fn penalty_worse_at_low_quality() {
        // Fixed per-tile overhead dominates at low bitrates (Fig. 8: the
        // Ptile advantage grows as quality drops).
        let m = model();
        let a = 1.0 / 32.0;
        assert!(m.penalty(a, QualityLevel::Q1) > m.penalty(a, QualityLevel::Q5));
    }

    #[test]
    fn base_rates_grow_roughly_geometrically() {
        // Each CRF −5 step roughly doubles the payload.
        let m = model();
        for w in QualityLevel::ALL.windows(2) {
            let ratio = m.whole_frame_bps(w[1]) / m.whole_frame_bps(w[0]);
            assert!((1.8..=2.8).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn framerate_factor_normalised() {
        let m = model();
        assert!((m.framerate_factor(30.0) - 1.0).abs() < 1e-12);
        let f21 = m.framerate_factor(21.0);
        // Dropping 30% of frames saves less than 30% of bits.
        assert!(f21 > 0.70 && f21 < 1.0);
    }

    #[test]
    fn harder_content_costs_more() {
        let m = model();
        let calm = SiTi::new(40.0, 8.0);
        let busy = SiTi::new(80.0, 50.0);
        let a = m.region_bits(0.5, 4, QualityLevel::Q3, 30.0, calm);
        let b = m.region_bits(0.5, 4, QualityLevel::Q3, 30.0, busy);
        assert!(b > a);
    }

    #[test]
    fn typical_segment_sizes_are_plausible() {
        // A Ctile FoV (9 tiles, 9/32 area) at quality 3 should be a few
        // megabits: streamable over the paper's LTE traces.
        let m = model();
        let bits = m.region_bits(9.0 / 32.0, 9, QualityLevel::Q3, 30.0, ref_content());
        assert!(bits > 1.0e6 && bits < 4.0e6, "got {bits}");
    }

    #[test]
    #[should_panic(expected = "area fraction")]
    fn zero_area_panics() {
        let _ = model().region_bits(0.0, 1, QualityLevel::Q1, 30.0, ref_content());
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_panics() {
        let _ = model().region_bits(0.5, 0, QualityLevel::Q1, 30.0, ref_content());
    }

    #[test]
    #[should_panic(expected = "frame rate")]
    fn zero_fps_panics() {
        let _ = model().framerate_factor(0.0);
    }

    proptest! {
        #[test]
        fn bits_monotone_in_quality(
            area in 0.05f64..1.0, n in 1usize..16, fps in 15.0f64..30.0,
        ) {
            let m = model();
            let c = ref_content();
            let mut prev = 0.0;
            for q in QualityLevel::ALL {
                let b = m.region_bits(area, n, q, fps, c);
                prop_assert!(b > prev);
                prev = b;
            }
        }

        #[test]
        fn bits_monotone_in_fps(
            area in 0.05f64..1.0, n in 1usize..16,
        ) {
            let m = model();
            let c = ref_content();
            let lo = m.region_bits(area, n, QualityLevel::Q3, 21.0, c);
            let hi = m.region_bits(area, n, QualityLevel::Q3, 30.0, c);
            prop_assert!(hi > lo);
        }

        #[test]
        fn more_tiles_never_cheaper(
            area in 0.1f64..1.0, n in 1usize..15,
        ) {
            let m = model();
            let c = ref_content();
            let few = m.region_bits(area, n, QualityLevel::Q2, 30.0, c);
            let many = m.region_bits(area, n + 1, QualityLevel::Q2, 30.0, c);
            prop_assert!(many >= few);
        }

        #[test]
        fn bits_positive_and_finite(
            area in 0.01f64..1.0, n in 1usize..64, fps in 1.0f64..60.0,
            si in 1.0f64..120.0, ti in 0.5f64..80.0,
        ) {
            let m = model();
            let b = m.region_bits(area, n, QualityLevel::Q4, fps, SiTi::new(si, ti));
            prop_assert!(b.is_finite() && b > 0.0);
        }
    }
}
