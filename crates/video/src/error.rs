//! Failure taxonomy of the catalog/manifest layer.
//!
//! Mirrors the simulator's `SimError` style: construction problems that
//! the seed treated as panics become values a caller can route — a CLI
//! can name the bad video id, a server can reject a malformed catalog
//! upload without dying.

use std::error::Error;
use std::fmt;

/// A recoverable failure while building or querying video metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoError {
    /// A catalog was constructed with no videos.
    EmptyCatalog,
    /// Two catalog entries share a Table III id.
    DuplicateVideoId {
        /// The id that appears more than once.
        id: usize,
    },
    /// A lookup named an id the catalog does not hold.
    UnknownVideo {
        /// The requested id.
        id: usize,
    },
    /// A manifest build was given the wrong number of per-segment
    /// Ptile-area lists.
    PtileAreaMismatch {
        /// Timeline length (lists required).
        expected: usize,
        /// Lists provided.
        got: usize,
    },
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::EmptyCatalog => write!(f, "catalog must not be empty"),
            VideoError::DuplicateVideoId { id } => {
                write!(
                    f,
                    "video ids must be unique: id {id} appears more than once"
                )
            }
            VideoError::UnknownVideo { id } => write!(f, "no video with id {id} in the catalog"),
            VideoError::PtileAreaMismatch { expected, got } => write!(
                f,
                "need one Ptile-area list per segment: timeline has {expected}, got {got}"
            ),
        }
    }
}

impl Error for VideoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_id() {
        let e = VideoError::UnknownVideo { id: 9 };
        assert!(e.to_string().contains("id 9"));
        let e = VideoError::PtileAreaMismatch {
            expected: 5,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('3'), "{s}");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&VideoError::EmptyCatalog);
    }
}
