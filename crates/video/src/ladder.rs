//! Quality levels and the frame-rate ladder (Section III-A, V-A).
//!
//! Each tile is encoded at `V = 5` quality levels obtained by varying the
//! x264 constant rate factor from CRF 38 (level 1, lowest quality) to
//! CRF 18 (level 5, highest) in steps of 5. Ptiles are additionally encoded
//! at reduced frame rates: the paper constructs three reduced versions at
//! −10%, −20% and −30% of the original rate.

/// One of the paper's five encoding quality levels.
///
/// Level 1 is the lowest quality (CRF 38), level 5 the highest (CRF 18).
///
/// # Example
///
/// ```
/// use ee360_video::ladder::QualityLevel;
/// assert_eq!(QualityLevel::Q5.crf(), 18);
/// assert_eq!(QualityLevel::Q1.crf(), 38);
/// assert!(QualityLevel::Q5 > QualityLevel::Q1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QualityLevel {
    /// Level 1: CRF 38 (lowest quality).
    Q1,
    /// Level 2: CRF 33.
    Q2,
    /// Level 3: CRF 28.
    Q3,
    /// Level 4: CRF 23.
    Q4,
    /// Level 5: CRF 18 (highest quality).
    Q5,
}

ee360_support::impl_json_enum!(QualityLevel { Q1, Q2, Q3, Q4, Q5 });

impl QualityLevel {
    /// All levels, lowest to highest.
    pub const ALL: [QualityLevel; 5] = [
        QualityLevel::Q1,
        QualityLevel::Q2,
        QualityLevel::Q3,
        QualityLevel::Q4,
        QualityLevel::Q5,
    ];

    /// The paper's 1-based index (1 = lowest, 5 = highest).
    pub fn index(&self) -> usize {
        match self {
            QualityLevel::Q1 => 1,
            QualityLevel::Q2 => 2,
            QualityLevel::Q3 => 3,
            QualityLevel::Q4 => 4,
            QualityLevel::Q5 => 5,
        }
    }

    /// Builds a level from the paper's 1-based index.
    ///
    /// Returns `None` if `idx` is not in `1..=5`.
    pub fn from_index(idx: usize) -> Option<Self> {
        match idx {
            1 => Some(QualityLevel::Q1),
            2 => Some(QualityLevel::Q2),
            3 => Some(QualityLevel::Q3),
            4 => Some(QualityLevel::Q4),
            5 => Some(QualityLevel::Q5),
            _ => None,
        }
    }

    /// The x264 constant rate factor this level maps to (38 down to 18).
    pub fn crf(&self) -> u32 {
        38 - 5 * (self.index() as u32 - 1)
    }

    /// The next lower level, or `None` at the bottom.
    pub fn lower(&self) -> Option<Self> {
        Self::from_index(self.index() - 1)
    }

    /// The next higher level, or `None` at the top.
    pub fn higher(&self) -> Option<Self> {
        Self::from_index(self.index() + 1)
    }
}

/// A concrete frame rate in frames per second.
///
/// The paper's source videos run at 30 fps; the frame-rate ladder for
/// Ptiles adds 27, 24 and 21 fps variants (−10%/−20%/−30%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRate {
    fps: f64,
}

ee360_support::impl_json_struct!(FrameRate { fps });

impl FrameRate {
    /// Creates a frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive.
    pub fn new(fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "frame rate must be positive");
        Self { fps }
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }
}

/// The full encoding ladder: quality levels × frame rates.
///
/// The highest frame-rate index corresponds to the original video rate,
/// matching the paper's convention that index `F` is the maximum.
///
/// # Example
///
/// ```
/// use ee360_video::ladder::EncodingLadder;
/// let ladder = EncodingLadder::paper_default();
/// assert_eq!(ladder.frame_rates().len(), 4); // 21, 24, 27, 30 fps
/// assert_eq!(ladder.max_frame_rate().fps(), 30.0);
/// assert_eq!(ladder.quality_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingLadder {
    original_fps: f64,
    /// Reduction fractions for the reduced-rate variants, e.g. `[0.1, 0.2, 0.3]`.
    reductions: Vec<f64>,
}

ee360_support::impl_json_struct!(EncodingLadder {
    original_fps,
    reductions
});

impl EncodingLadder {
    /// Creates a ladder from an original frame rate and reduction fractions.
    ///
    /// # Panics
    ///
    /// Panics if `original_fps` is not positive, or any reduction is outside
    /// `(0, 1)`.
    pub fn new(original_fps: f64, reductions: Vec<f64>) -> Self {
        assert!(
            original_fps.is_finite() && original_fps > 0.0,
            "original frame rate must be positive"
        );
        assert!(
            reductions.iter().all(|r| *r > 0.0 && *r < 1.0),
            "reductions must be fractions in (0, 1)"
        );
        Self {
            original_fps,
            reductions,
        }
    }

    /// The paper's ladder: 30 fps original, reductions of 10%, 20%, 30%.
    pub fn paper_default() -> Self {
        Self::new(30.0, vec![0.1, 0.2, 0.3])
    }

    /// A ladder with only the original frame rate (used by the Ptile
    /// baseline, which does not adapt frame rate).
    pub fn single_rate(original_fps: f64) -> Self {
        Self::new(original_fps, Vec::new())
    }

    /// All frame rates, lowest to highest; the last one is the original.
    // lint:allow(hot-path-alloc, "memo-miss only: the solver reaches this through candidate-set construction, which is cached per content key")
    pub fn frame_rates(&self) -> Vec<FrameRate> {
        let mut rates: Vec<FrameRate> = self
            .reductions
            .iter()
            .map(|r| FrameRate::new(self.original_fps * (1.0 - r)))
            .collect();
        rates.sort_by(|a, b| a.fps().total_cmp(&b.fps()));
        rates.push(FrameRate::new(self.original_fps));
        rates
    }

    /// The original (maximum) frame rate.
    pub fn max_frame_rate(&self) -> FrameRate {
        FrameRate::new(self.original_fps)
    }

    /// Number of frame-rate variants (`F` in the paper).
    pub fn frame_rate_count(&self) -> usize {
        self.reductions.len() + 1
    }

    /// Number of quality levels (`V` in the paper; always 5 here).
    pub fn quality_count(&self) -> usize {
        QualityLevel::ALL.len()
    }

    /// Iterates over every (quality, frame-rate) tuple of the ladder.
    // lint:allow(hot-path-alloc, "memo-miss only: the solver reaches this through candidate-set construction, which is cached per content key")
    pub fn variants(&self) -> Vec<(QualityLevel, FrameRate)> {
        let rates = self.frame_rates();
        QualityLevel::ALL
            .iter()
            .flat_map(|q| rates.iter().map(move |f| (*q, *f)))
            .collect()
    }
}

impl Default for EncodingLadder {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crf_mapping_matches_paper() {
        // CRF ranges from 38 to 18 with an interval of 5 (Section V-A).
        let crfs: Vec<u32> = QualityLevel::ALL.iter().map(|q| q.crf()).collect();
        assert_eq!(crfs, vec![38, 33, 28, 23, 18]);
    }

    #[test]
    fn index_roundtrip() {
        for q in QualityLevel::ALL {
            assert_eq!(QualityLevel::from_index(q.index()), Some(q));
        }
        assert_eq!(QualityLevel::from_index(0), None);
        assert_eq!(QualityLevel::from_index(6), None);
    }

    #[test]
    fn lower_higher_navigation() {
        assert_eq!(QualityLevel::Q1.lower(), None);
        assert_eq!(QualityLevel::Q5.higher(), None);
        assert_eq!(QualityLevel::Q3.higher(), Some(QualityLevel::Q4));
        assert_eq!(QualityLevel::Q3.lower(), Some(QualityLevel::Q2));
    }

    #[test]
    fn ordering_is_by_quality() {
        assert!(QualityLevel::Q1 < QualityLevel::Q2);
        assert!(QualityLevel::Q4 < QualityLevel::Q5);
    }

    #[test]
    fn paper_ladder_rates() {
        let ladder = EncodingLadder::paper_default();
        let fps: Vec<f64> = ladder.frame_rates().iter().map(|f| f.fps()).collect();
        assert_eq!(fps, vec![21.0, 24.0, 27.0, 30.0]);
        assert_eq!(ladder.frame_rate_count(), 4);
    }

    #[test]
    fn single_rate_ladder() {
        let ladder = EncodingLadder::single_rate(30.0);
        assert_eq!(ladder.frame_rate_count(), 1);
        assert_eq!(ladder.frame_rates().len(), 1);
        assert_eq!(ladder.frame_rates()[0].fps(), 30.0);
    }

    #[test]
    fn variants_cartesian_product() {
        let ladder = EncodingLadder::paper_default();
        let vs = ladder.variants();
        assert_eq!(vs.len(), 5 * 4);
        // First tuple pairs the lowest quality with the lowest rate.
        assert_eq!(vs[0].0, QualityLevel::Q1);
        assert_eq!(vs[0].1.fps(), 21.0);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn bad_reduction_panics() {
        let _ = EncodingLadder::new(30.0, vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_fps_panics() {
        let _ = FrameRate::new(0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let ladder = EncodingLadder::paper_default();
        let json = ee360_support::json::to_string(&ladder).unwrap();
        let back: EncodingLadder = ee360_support::json::from_str(&json).unwrap();
        assert_eq!(back, ladder);
    }
}
