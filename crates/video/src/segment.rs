//! Segment timing and per-segment content.
//!
//! The server splits each video into `L = 1 s` segments (Section III-A).
//! [`SegmentTimeline`] derives a deterministic per-segment [`SiTi`] series
//! from a [`VideoSpec`]: content complexity drifts slowly across a video
//! (scenes change every handful of seconds) around the video's base SI/TI.

use crate::catalog::VideoSpec;
use crate::content::SiTi;

/// Length of one video segment in seconds (`L` in the paper).
pub const SEGMENT_DURATION_SEC: f64 = 1.0;

/// The content descriptor of one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentContent {
    /// Zero-based segment index.
    pub index: usize,
    /// The segment's SI/TI.
    pub si_ti: SiTi,
}

ee360_support::impl_json_struct!(SegmentContent { index, si_ti });

/// Deterministic per-segment content series for one video.
///
/// # Example
///
/// ```
/// use ee360_video::catalog::VideoCatalog;
/// use ee360_video::segment::SegmentTimeline;
///
/// let catalog = VideoCatalog::paper_default();
/// let timeline = SegmentTimeline::for_video(catalog.video(8).unwrap());
/// assert_eq!(timeline.len(), 201);
/// let first = timeline.segment(0).unwrap();
/// assert!(first.si_ti.ti() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTimeline {
    video_id: usize,
    segments: Vec<SegmentContent>,
}

ee360_support::impl_json_struct!(SegmentTimeline { video_id, segments });

/// A cheap deterministic hash → `[-1, 1]` noise source (SplitMix64-based),
/// so the timeline never depends on `rand` and is identical across runs.
fn hash_noise(video_id: usize, index: usize, salt: u64) -> f64 {
    let mut z = (video_id as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(index as u64)
        .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

impl SegmentTimeline {
    /// Builds the timeline for one video.
    ///
    /// The SI/TI series combines a slow sinusoidal scene drift (period of a
    /// few tens of seconds) with small per-segment noise, all seeded from
    /// the video id so every run sees the same content.
    pub fn for_video(spec: &VideoSpec) -> Self {
        let n = spec.segment_count();
        let base = spec.base_si_ti;
        let segments = (0..n)
            .map(|i| {
                let t = i as f64;
                // Two incommensurate slow waves emulate scene changes.
                let drift = 0.12 * (t / 23.0 + spec.id as f64).sin()
                    + 0.08 * (t / 61.0 + spec.id as f64 * 2.0).cos();
                let si_noise = 0.05 * hash_noise(spec.id, i, 1);
                let ti_noise = 0.10 * hash_noise(spec.id, i, 2);
                let si = (base.si() * (1.0 + drift + si_noise)).max(1.0);
                let ti = (base.ti() * (1.0 + 1.5 * drift + ti_noise)).max(0.5);
                SegmentContent {
                    index: i,
                    si_ti: SiTi::new(si, ti),
                }
            })
            .collect();
        Self {
            video_id: spec.id,
            segments,
        }
    }

    /// The video this timeline belongs to.
    pub fn video_id(&self) -> usize {
        self.video_id
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` if the video has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// One segment's content, or `None` past the end.
    pub fn segment(&self, index: usize) -> Option<&SegmentContent> {
        self.segments.get(index)
    }

    /// All segments in order.
    pub fn segments(&self) -> &[SegmentContent] {
        &self.segments
    }

    /// Mean SI/TI over the whole timeline.
    pub fn mean_si_ti(&self) -> SiTi {
        let n = self.segments.len().max(1) as f64;
        let si = self.segments.iter().map(|s| s.si_ti.si()).sum::<f64>() / n;
        let ti = self.segments.iter().map(|s| s.si_ti.ti()).sum::<f64>() / n;
        SiTi::new(si, ti)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::VideoCatalog;

    fn timeline(id: usize) -> SegmentTimeline {
        let c = VideoCatalog::paper_default();
        SegmentTimeline::for_video(c.video(id).unwrap())
    }

    #[test]
    fn length_matches_duration() {
        let c = VideoCatalog::paper_default();
        for v in c.videos() {
            let t = SegmentTimeline::for_video(v);
            assert_eq!(t.len(), v.segment_count());
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = timeline(3);
        let b = timeline(3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_videos_differ() {
        let a = timeline(1);
        let b = timeline(2);
        assert_ne!(a.segment(0).unwrap().si_ti, b.segment(0).unwrap().si_ti);
    }

    #[test]
    fn mean_close_to_base() {
        let c = VideoCatalog::paper_default();
        for v in c.videos() {
            let t = SegmentTimeline::for_video(v);
            let m = t.mean_si_ti();
            let base = v.base_si_ti;
            assert!(
                (m.si() - base.si()).abs() / base.si() < 0.2,
                "video {} SI drifted: {} vs {}",
                v.id,
                m.si(),
                base.si()
            );
            assert!(
                (m.ti() - base.ti()).abs() / base.ti() < 0.3,
                "video {} TI drifted: {} vs {}",
                v.id,
                m.ti(),
                base.ti()
            );
        }
    }

    #[test]
    fn values_stay_positive() {
        for id in 1..=8 {
            let t = timeline(id);
            for s in t.segments() {
                assert!(s.si_ti.si() >= 1.0);
                assert!(s.si_ti.ti() >= 0.5);
            }
        }
    }

    #[test]
    fn indices_are_sequential() {
        let t = timeline(5);
        for (i, s) in t.segments().iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn out_of_range_segment_is_none() {
        let t = timeline(6);
        assert!(t.segment(10_000).is_none());
    }

    #[test]
    fn content_varies_over_time() {
        let t = timeline(1);
        let first = t.segment(0).unwrap().si_ti;
        let later = t.segment(100).unwrap().si_ti;
        assert!((first.ti() - later.ti()).abs() > 1e-6);
    }
}
