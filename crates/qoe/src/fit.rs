//! Refitting Eq. 3 — the Table II methodology, end to end.
//!
//! The paper obtains Table II by scoring segments with VMAF across SI, TI
//! and bitrate, then running nonlinear least squares (Matlab's `nlinfit`).
//! VMAF itself is unavailable offline, so the fitter generates synthetic
//! "VMAF" observations from the published ground-truth model plus
//! measurement noise, and recovers the coefficients with our
//! Levenberg–Marquardt — validating the entire fitting pipeline and
//! reproducing Table II (and the paper's Pearson r = 0.9791 check).

use ee360_support::rng::StdRng;

use ee360_numeric::lm::{LevenbergMarquardt, LmError};
use ee360_numeric::stats::pearson_correlation;
use ee360_video::content::SiTi;

use crate::quality::{QoCoefficients, QoModel, TABLE2_COEFFICIENTS};

/// One synthetic VMAF observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoSample {
    /// Content descriptor of the scored segment.
    pub si: f64,
    /// Temporal information of the scored segment.
    pub ti: f64,
    /// Encoding bitrate in Mbps.
    pub bitrate_mbps: f64,
    /// Observed (noisy) VMAF score.
    pub vmaf: f64,
}

ee360_support::impl_json_struct!(QoSample {
    si,
    ti,
    bitrate_mbps,
    vmaf
});

/// Result of a fit: coefficients plus goodness-of-fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOutcome {
    /// The recovered coefficients.
    pub coefficients: QoCoefficients,
    /// Pearson correlation between model predictions and observations
    /// (the paper reports 0.9791).
    pub pearson_r: f64,
    /// Number of training samples.
    pub n_samples: usize,
    /// Final sum of squared residuals.
    pub residual_cost: f64,
}

ee360_support::impl_json_struct!(FitOutcome {
    coefficients,
    pearson_r,
    n_samples,
    residual_cost
});

/// Generates synthetic VMAF observations and fits Eq. 3 to them.
#[derive(Debug, Clone, PartialEq)]
pub struct QoFitter {
    noise_std: f64,
    seed: u64,
}

impl QoFitter {
    /// A fitter with the default measurement-noise level (±2 VMAF points,
    /// comparable to VMAF's own inter-run variance).
    pub fn new(seed: u64) -> Self {
        Self {
            noise_std: 2.0,
            seed,
        }
    }

    /// Overrides the observation noise (VMAF points, standard deviation).
    pub fn with_noise_std(mut self, noise_std: f64) -> Self {
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        self.noise_std = noise_std;
        self
    }

    /// Generates the training grid: SI × TI × bitrate, mirroring the
    /// paper's "ten segments per video across 18 videos" sweep.
    pub fn generate_samples(&self) -> Vec<QoSample> {
        let truth = QoModel::paper_default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples = Vec::new();
        for si_step in 0..8 {
            for ti_step in 0..8 {
                let si = 25.0 + 10.0 * si_step as f64;
                let ti = 5.0 + 8.0 * ti_step as f64;
                for b_step in 0..10 {
                    let b = 0.5 + 1.2 * b_step as f64;
                    let clean = truth.q_o(SiTi::new(si, ti), b);
                    // Box–Muller Gaussian noise.
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let vmaf = (clean + self.noise_std * gauss).clamp(0.0, 100.0);
                    samples.push(QoSample {
                        si,
                        ti,
                        bitrate_mbps: b,
                        vmaf,
                    });
                }
            }
        }
        samples
    }

    /// Fits Eq. 3 to a sample set.
    ///
    /// # Errors
    ///
    /// Propagates [`LmError`] from the optimiser (e.g. empty samples).
    pub fn fit(&self, samples: &[QoSample]) -> Result<FitOutcome, LmError> {
        if samples.is_empty() {
            return Err(LmError::InconsistentResiduals);
        }
        let lm = LevenbergMarquardt::new().with_max_iterations(500);
        let report = lm.minimize(&[0.0, 0.0, 0.0, 0.5], |theta| {
            let model = QoModel::with_coefficients(QoCoefficients::from_array([
                theta[0], theta[1], theta[2], theta[3],
            ]));
            samples
                .iter()
                .map(|s| model.q_o(SiTi::new(s.si, s.ti), s.bitrate_mbps) - s.vmaf)
                .collect()
        })?;
        let coefficients = QoCoefficients::from_array([
            report.params[0],
            report.params[1],
            report.params[2],
            report.params[3],
        ]);
        let fitted = QoModel::with_coefficients(coefficients);
        let predictions: Vec<f64> = samples
            .iter()
            .map(|s| fitted.q_o(SiTi::new(s.si, s.ti), s.bitrate_mbps))
            .collect();
        let observations: Vec<f64> = samples.iter().map(|s| s.vmaf).collect();
        Ok(FitOutcome {
            coefficients,
            pearson_r: pearson_correlation(&predictions, &observations),
            n_samples: samples.len(),
            residual_cost: report.cost,
        })
    }

    /// Convenience: generate samples and fit in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`LmError`] from the optimiser.
    pub fn run(&self) -> Result<FitOutcome, LmError> {
        let samples = self.generate_samples();
        self.fit(&samples)
    }
}

/// How far a fitted coefficient set strays from Table II, as the max
/// absolute per-coefficient deviation.
pub fn max_deviation_from_table2(c: &QoCoefficients) -> f64 {
    c.as_array()
        .iter()
        .zip(TABLE2_COEFFICIENTS.as_array())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_fit_recovers_table2_exactly() {
        let fitter = QoFitter::new(7).with_noise_std(0.0);
        let outcome = fitter.run().unwrap();
        assert!(
            max_deviation_from_table2(&outcome.coefficients) < 1e-4,
            "coefficients {:?}",
            outcome.coefficients
        );
        assert!(outcome.pearson_r > 0.9999);
    }

    #[test]
    fn noisy_fit_recovers_table2_approximately() {
        let fitter = QoFitter::new(42); // ±2 VMAF noise
        let outcome = fitter.run().unwrap();
        assert!(
            max_deviation_from_table2(&outcome.coefficients) < 0.05,
            "coefficients {:?}",
            outcome.coefficients
        );
        // The paper reports Pearson r = 0.9791 on its (noisier) real data.
        assert!(outcome.pearson_r > 0.97, "r = {}", outcome.pearson_r);
    }

    #[test]
    fn sample_grid_shape() {
        let samples = QoFitter::new(1).generate_samples();
        assert_eq!(samples.len(), 8 * 8 * 10);
        assert!(samples.iter().all(|s| (0.0..=100.0).contains(&s.vmaf)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = QoFitter::new(5).generate_samples();
        let b = QoFitter::new(5).generate_samples();
        assert_eq!(a, b);
        let c = QoFitter::new(6).generate_samples();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_samples_error() {
        let fitter = QoFitter::new(1);
        assert!(fitter.fit(&[]).is_err());
    }

    #[test]
    fn more_noise_lowers_correlation() {
        let clean = QoFitter::new(9).with_noise_std(0.5).run().unwrap();
        let noisy = QoFitter::new(9).with_noise_std(8.0).run().unwrap();
        assert!(clean.pearson_r > noisy.pearson_r);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        let _ = QoFitter::new(1).with_noise_std(-1.0);
    }
}
