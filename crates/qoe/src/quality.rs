//! The "original" quality `Q_o` (Eq. 3, Table II).
//!
//! ```text
//! Q_o = 100 / (1 + exp(−(c1 + c2·SI + c3·TI + c4·b)))
//! ```
//!
//! `b` is the encoding bitrate in Mbps, SI/TI the ITU-T P.910 content
//! descriptors. The coefficients were fitted by the paper against VMAF
//! scores over the MMSys'17 dataset (nonlinear least squares, Pearson
//! r = 0.9791) and published as Table II.

use ee360_video::content::SiTi;

/// Table II of the paper: the fitted coefficients of Eq. 3.
pub const TABLE2_COEFFICIENTS: QoCoefficients = QoCoefficients {
    c1: -0.2163,
    c2: 0.0581,
    c3: -0.1578,
    c4: 0.7821,
};

/// The four coefficients of the logistic quality model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoCoefficients {
    /// Intercept.
    pub c1: f64,
    /// SI weight (spatial detail raises quality at equal bitrate — detail
    /// masks coding artifacts).
    pub c2: f64,
    /// TI weight (motion lowers quality at equal bitrate — it is harder to
    /// encode).
    pub c3: f64,
    /// Bitrate weight, per Mbps.
    pub c4: f64,
}

ee360_support::impl_json_struct!(QoCoefficients { c1, c2, c3, c4 });

impl QoCoefficients {
    /// The coefficients as an array `[c1, c2, c3, c4]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.c1, self.c2, self.c3, self.c4]
    }

    /// Builds from an array `[c1, c2, c3, c4]`.
    pub fn from_array(a: [f64; 4]) -> Self {
        Self {
            c1: a[0],
            c2: a[1],
            c3: a[2],
            c4: a[3],
        }
    }
}

/// The Eq. 3 quality model.
///
/// # Example
///
/// ```
/// use ee360_qoe::quality::QoModel;
/// use ee360_video::content::SiTi;
///
/// let m = QoModel::paper_default();
/// // High-motion content needs more bitrate for the same quality.
/// let calm = m.q_o(SiTi::new(60.0, 10.0), 3.0);
/// let busy = m.q_o(SiTi::new(60.0, 50.0), 3.0);
/// assert!(calm > busy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoModel {
    coefficients: QoCoefficients,
}

ee360_support::impl_json_struct!(QoModel { coefficients });

impl QoModel {
    /// Model with the paper's Table II coefficients.
    pub fn paper_default() -> Self {
        Self {
            coefficients: TABLE2_COEFFICIENTS,
        }
    }

    /// Model with custom coefficients (e.g. refitted by [`crate::fit`]).
    pub fn with_coefficients(coefficients: QoCoefficients) -> Self {
        Self { coefficients }
    }

    /// The model's coefficients.
    pub fn coefficients(&self) -> QoCoefficients {
        self.coefficients
    }

    /// Evaluates Eq. 3: the VMAF-scale quality of content encoded at
    /// `bitrate_mbps`. Result is always in `(0, 100)`.
    ///
    /// # Panics
    ///
    /// Panics if the bitrate is negative or not finite.
    pub fn q_o(&self, content: SiTi, bitrate_mbps: f64) -> f64 {
        assert!(
            bitrate_mbps.is_finite() && bitrate_mbps >= 0.0,
            "bitrate must be non-negative"
        );
        let c = &self.coefficients;
        let z = c.c1 + c.c2 * content.si() + c.c3 * content.ti() + c.c4 * bitrate_mbps;
        100.0 / (1.0 + (-z).exp())
    }
}

impl Default for QoModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    fn model() -> QoModel {
        QoModel::paper_default()
    }

    #[test]
    fn table2_values() {
        let c = TABLE2_COEFFICIENTS;
        assert_eq!(c.c1, -0.2163);
        assert_eq!(c.c2, 0.0581);
        assert_eq!(c.c3, -0.1578);
        assert_eq!(c.c4, 0.7821);
    }

    #[test]
    fn quality_increases_with_bitrate() {
        let m = model();
        let c = SiTi::new(60.0, 25.0);
        let mut prev = 0.0;
        for b in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let q = m.q_o(c, b);
            assert!(q > prev);
            prev = q;
        }
    }

    #[test]
    fn quality_bounded_0_100() {
        let m = model();
        assert!(m.q_o(SiTi::new(0.0, 100.0), 0.0) > 0.0);
        // The logistic saturates to exactly 100.0 in f64 at extreme inputs.
        assert!(m.q_o(SiTi::new(120.0, 0.0), 100.0) <= 100.0);
    }

    #[test]
    fn motion_hurts_detail_helps() {
        let m = model();
        let base = m.q_o(SiTi::new(60.0, 25.0), 4.0);
        assert!(m.q_o(SiTi::new(60.0, 45.0), 4.0) < base);
        assert!(m.q_o(SiTi::new(80.0, 25.0), 4.0) > base);
    }

    #[test]
    fn reference_point_plausible() {
        // Mid-complexity content at ~5 Mbps should be "good" on the VMAF
        // scale (the paper's Fig. 4b saturates towards 100 at high rates).
        let q = model().q_o(SiTi::new(60.0, 25.0), 5.0);
        assert!(q > 80.0 && q < 100.0, "got {q}");
    }

    #[test]
    fn coefficients_roundtrip() {
        let a = TABLE2_COEFFICIENTS.as_array();
        assert_eq!(QoCoefficients::from_array(a), TABLE2_COEFFICIENTS);
    }

    #[test]
    fn custom_coefficients_used() {
        let custom = QoCoefficients::from_array([0.0, 0.0, 0.0, 1.0]);
        let m = QoModel::with_coefficients(custom);
        // With only the bitrate term, b = 0 gives exactly 50.
        assert!((m.q_o(SiTi::new(50.0, 50.0), 0.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bitrate_panics() {
        let _ = model().q_o(SiTi::new(60.0, 25.0), -1.0);
    }

    /// Historical proptest shrink (see `proptest-regressions/quality.txt`):
    /// high SI, zero TI, and ~47 Mbps drives the logistic deep into
    /// saturation; the result must stay within `(0, 100]`, not overshoot.
    #[test]
    fn regression_saturated_logistic_stays_in_range() {
        let q = model().q_o(SiTi::new(113.59367783309705, 0.0), 46.60298264908567);
        assert!(q > 0.0 && q <= 100.0, "got {q}");
    }

    proptest! {
        #[test]
        fn q_o_in_open_unit_interval(
            si in 0.0f64..150.0, ti in 0.0f64..100.0, b in 0.0f64..50.0,
        ) {
            let q = model().q_o(SiTi::new(si, ti), b);
            prop_assert!(q > 0.0 && q <= 100.0);
        }

        #[test]
        fn q_o_monotone_in_bitrate(
            si in 0.0f64..150.0, ti in 0.0f64..100.0, b in 0.0f64..40.0,
        ) {
            let m = model();
            let c = SiTi::new(si, ti);
            // >= rather than >: the logistic saturates in f64 at extremes.
            prop_assert!(m.q_o(c, b + 1.0) >= m.q_o(c, b));
        }
    }
}
