//! Eq. 2: per-segment QoE with quality-variation and rebuffering penalties.
//!
//! ```text
//! Q = Q_o − ω_v · I_v − ω_r · I_r
//! I_v = |Q_o^k − Q_o^{k−1}|
//! I_r = max(S_k / R_k − B_k, 0) / B_k · Q_o^k
//! ```
//!
//! The paper sets the weights `(ω_v, ω_r) = (1, 1)` (Section V-A). One
//! numerical note: the paper's `I_r` divides by the buffer level `B_k`,
//! which is singular when a request is issued with an empty buffer; we
//! floor the divisor at 100 ms and cap `I_r` at `Q_o` so a stall can wipe
//! out a segment's quality but never drive the score below what an empty
//! segment would earn.

/// The impairment weights of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoeWeights {
    /// Weight of quality variation (`ω_v`).
    pub variation: f64,
    /// Weight of rebuffering (`ω_r`).
    pub rebuffering: f64,
}

ee360_support::impl_json_struct!(QoeWeights {
    variation,
    rebuffering
});

impl QoeWeights {
    /// The paper's setting: `(ω_v, ω_r) = (1, 1)`.
    pub fn paper_default() -> Self {
        Self {
            variation: 1.0,
            rebuffering: 1.0,
        }
    }
}

impl Default for QoeWeights {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One segment's QoE decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentQoe {
    /// The (frame-rate-scaled) original quality `Q_o` of this segment.
    pub q_o: f64,
    /// The quality-variation impairment `I_v`.
    pub variation: f64,
    /// The rebuffering impairment `I_r`.
    pub rebuffering: f64,
    /// The weighted total `Q`.
    pub total: f64,
}

ee360_support::impl_json_struct!(SegmentQoe {
    q_o,
    variation,
    rebuffering,
    total
});

impl SegmentQoe {
    /// Evaluates Eq. 2 for one segment.
    ///
    /// * `q_o` — this segment's quality (already including the frame-rate
    ///   factor);
    /// * `prev_q_o` — the previous segment's quality, or `None` for the
    ///   first segment (no variation penalty);
    /// * `download_sec` — `S_k / R_k`, the time the download took;
    /// * `buffer_sec` — `B_k`, buffered video when the request was issued.
    ///
    /// # Panics
    ///
    /// Panics if `q_o` is outside `[0, 100]` or the times are negative.
    pub fn evaluate(
        weights: QoeWeights,
        q_o: f64,
        prev_q_o: Option<f64>,
        download_sec: f64,
        buffer_sec: f64,
    ) -> Self {
        assert!(
            (0.0..=100.0).contains(&q_o),
            "q_o must be on the VMAF scale [0, 100], got {q_o}"
        );
        assert!(
            download_sec.is_finite() && download_sec >= 0.0,
            "download time must be non-negative"
        );
        assert!(
            buffer_sec.is_finite() && buffer_sec >= 0.0,
            "buffer level must be non-negative"
        );
        let variation = prev_q_o.map_or(0.0, |p| (q_o - p).abs());
        let stall_sec = (download_sec - buffer_sec).max(0.0);
        let rebuffering = if stall_sec > 0.0 {
            // Floor the divisor at 100 ms (see module docs) and cap at Q_o.
            (stall_sec / buffer_sec.max(0.1) * q_o).min(q_o)
        } else {
            0.0
        };
        let total = q_o - weights.variation * variation - weights.rebuffering * rebuffering;
        Self {
            q_o,
            variation,
            rebuffering,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    fn w() -> QoeWeights {
        QoeWeights::paper_default()
    }

    #[test]
    fn smooth_playback_has_no_penalties() {
        let q = SegmentQoe::evaluate(w(), 80.0, Some(80.0), 0.5, 3.0);
        assert_eq!(q.variation, 0.0);
        assert_eq!(q.rebuffering, 0.0);
        assert_eq!(q.total, 80.0);
    }

    #[test]
    fn first_segment_has_no_variation_penalty() {
        let q = SegmentQoe::evaluate(w(), 70.0, None, 0.2, 3.0);
        assert_eq!(q.variation, 0.0);
    }

    #[test]
    fn quality_switch_penalised_symmetrically() {
        let up = SegmentQoe::evaluate(w(), 80.0, Some(60.0), 0.1, 3.0);
        let down = SegmentQoe::evaluate(w(), 60.0, Some(80.0), 0.1, 3.0);
        assert_eq!(up.variation, 20.0);
        assert_eq!(down.variation, 20.0);
        assert_eq!(up.total, 60.0);
        assert_eq!(down.total, 40.0);
    }

    #[test]
    fn rebuffering_matches_paper_formula() {
        // Download takes 4 s with 3 s buffered: 1 s stall, I_r = 1/3 · Q_o.
        let q = SegmentQoe::evaluate(w(), 90.0, Some(90.0), 4.0, 3.0);
        assert!((q.rebuffering - 30.0).abs() < 1e-9);
        assert!((q.total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn rebuffering_capped_at_q_o() {
        // A catastrophic stall cannot push I_r beyond Q_o.
        let q = SegmentQoe::evaluate(w(), 50.0, Some(50.0), 30.0, 0.5);
        assert_eq!(q.rebuffering, 50.0);
        assert_eq!(q.total, 0.0);
    }

    #[test]
    fn empty_buffer_uses_floor() {
        let q = SegmentQoe::evaluate(w(), 60.0, None, 1.0, 0.0);
        // stall 1 s / floor 0.1 s = 10 × Q_o, capped at Q_o.
        assert_eq!(q.rebuffering, 60.0);
    }

    #[test]
    fn weights_scale_penalties() {
        let custom = QoeWeights {
            variation: 0.5,
            rebuffering: 2.0,
        };
        let q = SegmentQoe::evaluate(custom, 80.0, Some(70.0), 4.0, 3.0);
        // I_v = 10 → 5 after weighting; I_r = 1/3·80 = 26.67 → 53.33.
        assert!((q.total - (80.0 - 5.0 - 2.0 * 80.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "VMAF scale")]
    fn out_of_scale_quality_panics() {
        let _ = SegmentQoe::evaluate(w(), 120.0, None, 0.1, 3.0);
    }

    proptest! {
        #[test]
        fn total_never_exceeds_q_o(
            q_o in 0.0f64..100.0,
            prev in 0.0f64..100.0,
            dl in 0.0f64..10.0,
            buf in 0.0f64..6.0,
        ) {
            let q = SegmentQoe::evaluate(w(), q_o, Some(prev), dl, buf);
            prop_assert!(q.total <= q.q_o + 1e-12);
        }

        #[test]
        fn impairments_nonnegative(
            q_o in 0.0f64..100.0,
            dl in 0.0f64..10.0,
            buf in 0.0f64..6.0,
        ) {
            let q = SegmentQoe::evaluate(w(), q_o, None, dl, buf);
            prop_assert!(q.variation >= 0.0);
            prop_assert!(q.rebuffering >= 0.0);
        }

        #[test]
        fn faster_download_never_hurts(
            q_o in 1.0f64..100.0,
            dl in 0.5f64..8.0,
            buf in 0.1f64..5.0,
        ) {
            let slow = SegmentQoe::evaluate(w(), q_o, None, dl, buf);
            let fast = SegmentQoe::evaluate(w(), q_o, None, dl * 0.5, buf);
            prop_assert!(fast.total >= slow.total - 1e-12);
        }
    }
}
