//! Mapping the VMAF-scale QoE onto a 5-point MOS.
//!
//! The paper validates Eq. 3 against VMAF because VMAF "presents a strong
//! correlation with the subjective experiment result (i.e., mean opinion
//! score)". Operators still report MOS, so this module provides the
//! standard monotone mapping between the two scales: the ITU-T P.1203-style
//! S-curve that compresses the extremes (a VMAF of 95 and 100 are both
//! "excellent"; 5 and 0 are both "bad").

/// A 5-point mean opinion score, `1.0..=5.0`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Mos(f64);

ee360_support::impl_json_newtype!(Mos);

impl Mos {
    /// Wraps a raw MOS value.
    ///
    /// # Panics
    ///
    /// Panics if the value is outside `[1, 5]`.
    pub fn new(value: f64) -> Self {
        assert!(
            (1.0..=5.0).contains(&value),
            "MOS must be in [1, 5], got {value}"
        );
        Self(value)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The ITU five-grade label.
    pub fn label(&self) -> &'static str {
        match self.0 {
            v if v >= 4.3 => "excellent",
            v if v >= 3.6 => "good",
            v if v >= 2.8 => "fair",
            v if v >= 2.0 => "poor",
            _ => "bad",
        }
    }
}

/// Maps a VMAF-scale score (`0..=100`) to MOS with the standard S-curve
///
/// ```text
/// mos = 1 + 4 · (q² (3 − 2q))        where q = vmaf / 100
/// ```
///
/// (the smoothstep used by P.1203-family models: linear in the middle,
/// compressed at both ends).
///
/// # Panics
///
/// Panics if `vmaf` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// use ee360_qoe::mos::vmaf_to_mos;
/// assert_eq!(vmaf_to_mos(0.0).value(), 1.0);
/// assert_eq!(vmaf_to_mos(100.0).value(), 5.0);
/// assert_eq!(vmaf_to_mos(50.0).value(), 3.0);
/// assert_eq!(vmaf_to_mos(95.0).label(), "excellent");
/// ```
pub fn vmaf_to_mos(vmaf: f64) -> Mos {
    assert!(
        (0.0..=100.0).contains(&vmaf),
        "VMAF must be in [0, 100], got {vmaf}"
    );
    let q = vmaf / 100.0;
    let s = q * q * (3.0 - 2.0 * q);
    Mos::new(1.0 + 4.0 * s)
}

/// The inverse mapping: the VMAF score that produces a given MOS.
///
/// Solved by bisection (the smoothstep is strictly monotone on `[0, 1]`).
pub fn mos_to_vmaf(mos: Mos) -> f64 {
    let target = (mos.value() - 1.0) / 4.0;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let s = mid * mid * (3.0 - 2.0 * mid);
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn endpoints_and_midpoint() {
        assert_eq!(vmaf_to_mos(0.0).value(), 1.0);
        assert_eq!(vmaf_to_mos(100.0).value(), 5.0);
        assert!((vmaf_to_mos(50.0).value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn s_curve_compresses_the_top() {
        // The step from VMAF 90 → 100 moves MOS less than 45 → 55 does.
        let top = vmaf_to_mos(100.0).value() - vmaf_to_mos(90.0).value();
        let mid = vmaf_to_mos(55.0).value() - vmaf_to_mos(45.0).value();
        assert!(top < mid);
    }

    #[test]
    fn labels_follow_the_grades() {
        assert_eq!(vmaf_to_mos(98.0).label(), "excellent");
        assert_eq!(vmaf_to_mos(65.0).label(), "good");
        assert_eq!(vmaf_to_mos(50.0).label(), "fair");
        assert_eq!(vmaf_to_mos(35.0).label(), "poor");
        assert_eq!(vmaf_to_mos(5.0).label(), "bad");
    }

    #[test]
    fn inverse_roundtrips() {
        for vmaf in [0.0, 12.5, 37.0, 50.0, 86.4, 100.0] {
            let back = mos_to_vmaf(vmaf_to_mos(vmaf));
            assert!((back - vmaf).abs() < 1e-6, "vmaf {vmaf} → {back}");
        }
    }

    #[test]
    #[should_panic(expected = "VMAF must be in")]
    fn out_of_range_vmaf_panics() {
        let _ = vmaf_to_mos(101.0);
    }

    #[test]
    #[should_panic(expected = "MOS must be in")]
    fn out_of_range_mos_panics() {
        let _ = Mos::new(5.5);
    }

    proptest! {
        #[test]
        fn mapping_is_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(vmaf_to_mos(lo).value() <= vmaf_to_mos(hi).value() + 1e-12);
        }

        #[test]
        fn mos_always_in_range(v in 0.0f64..=100.0) {
            let m = vmaf_to_mos(v).value();
            prop_assert!((1.0..=5.0).contains(&m));
        }
    }
}
