//! The frame-rate quality factor (Section III-C2, Eq. 4).
//!
//! Reducing the frame rate reduces `Q_o` by
//!
//! ```text
//! factor = (1 − e^{−α f / f_m}) / (1 − e^{−α})
//! ```
//!
//! an inverted exponential in the displayed rate `f` relative to the
//! original `f_m`. The sensitivity parameter
//!
//! ```text
//! α = S_fov / TI        (Eq. 4)
//! ```
//!
//! grows with the view-switching speed (a fast-moving gaze blurs detail, so
//! dropped frames go unnoticed) and shrinks with the content's motion (high
//! TI makes dropped frames visible as judder).

/// Computes Eq. 4's sensitivity `α = S_fov / TI`.
///
/// A small floor keeps `α` positive for perfectly static traces so the
/// factor below stays well defined.
///
/// # Panics
///
/// Panics if `ti` is not strictly positive or `s_fov_deg_s` is negative.
///
/// # Example
///
/// ```
/// use ee360_qoe::framerate::alpha;
/// // Fast exploration over calm content: very insensitive to frame rate.
/// assert!(alpha(30.0, 10.0) > alpha(5.0, 40.0));
/// ```
pub fn alpha(s_fov_deg_s: f64, ti: f64) -> f64 {
    assert!(
        s_fov_deg_s.is_finite() && s_fov_deg_s >= 0.0,
        "switching speed must be non-negative"
    );
    assert!(ti.is_finite() && ti > 0.0, "TI must be strictly positive");
    (s_fov_deg_s / ti).max(1e-3)
}

/// The inverted-exponential quality factor for displaying `fps` out of an
/// original `max_fps`, with sensitivity `alpha`.
///
/// Equals 1 at `fps == max_fps` and decreases towards 0 as frames drop;
/// larger `alpha` flattens the curve (frame rate matters less).
///
/// # Panics
///
/// Panics if `fps` is not in `(0, max_fps]` or `alpha` is not positive.
///
/// # Example
///
/// ```
/// use ee360_qoe::framerate::framerate_factor;
/// let insensitive = framerate_factor(21.0, 30.0, 3.0);
/// let sensitive = framerate_factor(21.0, 30.0, 0.3);
/// assert!(insensitive > sensitive);
/// assert!((framerate_factor(30.0, 30.0, 1.0) - 1.0).abs() < 1e-12);
/// ```
pub fn framerate_factor(fps: f64, max_fps: f64, alpha: f64) -> f64 {
    assert!(
        max_fps.is_finite() && max_fps > 0.0,
        "max frame rate must be positive"
    );
    assert!(
        fps.is_finite() && fps > 0.0 && fps <= max_fps + 1e-9,
        "fps must be in (0, max_fps], got {fps} of {max_fps}"
    );
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    let num = 1.0 - (-alpha * fps / max_fps).exp();
    let den = 1.0 - (-alpha).exp();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee360_support::prelude::*;

    #[test]
    fn full_rate_factor_is_one() {
        for a in [0.1, 1.0, 5.0] {
            assert!((framerate_factor(30.0, 30.0, a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn factor_decreases_with_dropped_frames() {
        let a = 1.0;
        let f27 = framerate_factor(27.0, 30.0, a);
        let f24 = framerate_factor(24.0, 30.0, a);
        let f21 = framerate_factor(21.0, 30.0, a);
        assert!(f27 < 1.0);
        assert!(f24 < f27);
        assert!(f21 < f24);
    }

    #[test]
    fn fast_switching_tolerates_reduction() {
        // The paper's soccer example: during a fast pan (high S_fov) the
        // 21 fps Ptile loses almost no perceived quality.
        let fast = framerate_factor(21.0, 30.0, alpha(30.0, 10.0)); // α = 3
        let slow = framerate_factor(21.0, 30.0, alpha(2.0, 40.0)); // α = 0.05→floor
        assert!(fast > 0.9, "got {fast}");
        assert!(slow < 0.75, "got {slow}");
    }

    #[test]
    fn alpha_floor_applies() {
        assert_eq!(alpha(0.0, 50.0), 1e-3);
    }

    #[test]
    fn alpha_matches_eq4() {
        assert!((alpha(20.0, 40.0) - 0.5).abs() < 1e-12);
        assert!((alpha(45.0, 15.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_alpha_is_nearly_linear() {
        // As α → 0, the factor tends to f / f_m.
        let f = framerate_factor(15.0, 30.0, 1e-3);
        assert!((f - 0.5).abs() < 0.01, "got {f}");
    }

    #[test]
    #[should_panic(expected = "TI must be strictly positive")]
    fn zero_ti_panics() {
        let _ = alpha(10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "fps must be in")]
    fn fps_above_max_panics() {
        let _ = framerate_factor(31.0, 30.0, 1.0);
    }

    proptest! {
        #[test]
        fn factor_in_unit_interval(
            fps in 1.0f64..30.0, a in 0.001f64..20.0,
        ) {
            let f = framerate_factor(fps, 30.0, a);
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
        }

        #[test]
        fn factor_monotone_in_alpha(
            fps in 1.0f64..29.0, a in 0.01f64..10.0,
        ) {
            let lo = framerate_factor(fps, 30.0, a);
            let hi = framerate_factor(fps, 30.0, a + 1.0);
            prop_assert!(hi >= lo - 1e-12);
        }

        #[test]
        fn factor_monotone_in_fps(
            fps in 1.0f64..29.0, a in 0.01f64..10.0,
        ) {
            let lo = framerate_factor(fps, 30.0, a);
            let hi = framerate_factor(fps + 1.0, 30.0, a);
            prop_assert!(hi >= lo);
        }
    }
}
