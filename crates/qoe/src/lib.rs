//! The paper's QoE model (Section III-C).
//!
//! Quality of experience for segment `k` combines three impairments
//! (Eq. 2):
//!
//! ```text
//! Q = Q_o − ω_v · I_v − ω_r · I_r
//! ```
//!
//! * `Q_o` — the "original" perceived quality, a VMAF-scale logistic in the
//!   content's SI/TI and the encoding bitrate (Eq. 3, coefficients in
//!   Table II), further scaled by the frame-rate factor
//!   `(1 − e^{−α f / f_m}) / (1 − e^{−α})` with `α = S_fov / TI` (Eq. 4),
//! * `I_v` — quality variation between consecutive segments,
//! * `I_r` — the rebuffering impairment.
//!
//! Modules:
//!
//! * [`quality`] — Eq. 3 and Table II,
//! * [`framerate`] — Eq. 4 and the inverted-exponential factor,
//! * [`impairment`] — Eq. 2's penalty terms and the per-segment QoE,
//! * [`fit`] — regenerates Table II by fitting Eq. 3 to synthetic VMAF
//!   samples with Levenberg–Marquardt, validating the paper's methodology.
//!
//! # Example
//!
//! ```
//! use ee360_qoe::quality::QoModel;
//! use ee360_video::content::SiTi;
//!
//! let model = QoModel::paper_default();
//! let content = SiTi::new(60.0, 25.0);
//! let lo = model.q_o(content, 1.0);
//! let hi = model.q_o(content, 8.0);
//! assert!(hi > lo); // more bitrate, better quality
//! assert!(hi <= 100.0);
//! ```

pub mod fit;
pub mod framerate;
pub mod impairment;
pub mod mos;
pub mod quality;

pub use fit::{FitOutcome, QoFitter};
pub use framerate::{alpha, framerate_factor};
pub use impairment::{QoeWeights, SegmentQoe};
pub use mos::{mos_to_vmaf, vmaf_to_mos, Mos};
pub use quality::{QoCoefficients, QoModel, TABLE2_COEFFICIENTS};
