//! Viewport prediction with ridge regression (Section IV-B).
//!
//! The headset records (x, y) viewing-center coordinates at a fixed rate;
//! the client regresses each coordinate against time over a short recent
//! window and extrapolates to the playback time of the segment about to be
//! downloaded. The yaw series is unwrapped before regression so a pan
//! through the antimeridian looks linear rather than discontinuous.

use std::error::Error;
use std::fmt;

use ee360_geom::switching::SwitchingSample;
use ee360_geom::viewport::ViewCenter;
use ee360_numeric::ridge::RidgeRegression;
use ee360_support::quantile::QuantileSketch;

/// Why a predictor could not be built or a prediction could not be made.
///
/// Mirrors the `HeadTraceError`/`VideoError` pattern: a plain enum with a
/// `Display` impl, so callers can match on the variant or surface the
/// message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictError {
    /// Ridge regularisation strength was negative.
    NegativeLambda {
        /// The offending λ.
        lambda: f64,
    },
    /// The history window was zero or negative.
    NonPositiveWindow {
        /// The offending window length (seconds).
        window_sec: f64,
    },
    /// The prediction horizon was negative or non-finite.
    InvalidHorizon {
        /// The offending horizon (seconds).
        horizon_sec: f64,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PredictError::NegativeLambda { lambda } => {
                write!(f, "lambda must be non-negative, got {lambda}")
            }
            PredictError::NonPositiveWindow { window_sec } => {
                write!(f, "window must be positive, got {window_sec}")
            }
            PredictError::InvalidHorizon { horizon_sec } => {
                write!(f, "horizon must be non-negative, got {horizon_sec}")
            }
        }
    }
}

impl Error for PredictError {}

/// Which regression backs the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Ridge regression with the configured λ (the paper's choice).
    Ridge,
    /// Ridge regression with quadratic time features `[t, t²]` — captures
    /// accelerating pans at the cost of noisier extrapolation.
    RidgeQuadratic,
    /// Ordinary least squares (λ = 0 ablation).
    OrdinaryLeastSquares,
    /// Repeat the last observed center (no-regression ablation).
    LastSample,
}

ee360_support::impl_json_enum!(PredictorKind {
    Ridge,
    RidgeQuadratic,
    OrdinaryLeastSquares,
    LastSample
});

/// Predicts a future viewing center from recent gaze samples.
///
/// # Example
///
/// ```
/// use ee360_geom::switching::SwitchingSample;
/// use ee360_geom::viewport::ViewCenter;
/// use ee360_predict::viewport::ViewportPredictor;
///
/// // Steady pan at 20°/s.
/// let history: Vec<SwitchingSample> = (0..10)
///     .map(|i| {
///         let t = i as f64 * 0.1;
///         SwitchingSample::new(t, ViewCenter::new(20.0 * t, 0.0))
///     })
///     .collect();
/// let predictor = ViewportPredictor::paper_default();
/// let predicted = predictor.predict(&history, 1.0).unwrap();
/// // Expect roughly yaw = 20° × 1.9 s ≈ 38°; ridge shrinkage over the
/// // short window pulls the extrapolation slightly conservative.
/// assert!((predicted.yaw_deg() - 38.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewportPredictor {
    kind: PredictorKind,
    /// Ridge regularisation strength.
    lambda: f64,
    /// How much history (seconds) to regress over.
    window_sec: f64,
}

ee360_support::impl_json_struct!(ViewportPredictor {
    kind,
    lambda,
    window_sec
});

impl ViewportPredictor {
    /// The paper's predictor: ridge regression over the most recent
    /// 2 seconds of gaze history ("the coordinates of the most recent
    /// viewed segment have strong correlation with the segment to be
    /// downloaded").
    pub fn paper_default() -> Self {
        Self {
            kind: PredictorKind::Ridge,
            lambda: 0.1,
            window_sec: 2.0,
        }
    }

    /// A custom predictor; infallible wrapper around [`Self::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or `window_sec` is not positive.
    pub fn new(kind: PredictorKind, lambda: f64, window_sec: f64) -> Self {
        match Self::try_new(kind, lambda, window_sec) {
            Ok(p) => p,
            // lint:allow(no-panic-paths, "documented panic: infallible wrapper; try_new is the graceful API")
            Err(e) => panic!("invalid predictor config: {e}"),
        }
    }

    /// A custom predictor, rejecting bad configuration as a
    /// [`PredictError`] instead of panicking.
    pub fn try_new(
        kind: PredictorKind,
        lambda: f64,
        window_sec: f64,
    ) -> Result<Self, PredictError> {
        if !(lambda >= 0.0) {
            return Err(PredictError::NegativeLambda { lambda });
        }
        if !(window_sec > 0.0) {
            return Err(PredictError::NonPositiveWindow { window_sec });
        }
        Ok(Self {
            kind,
            lambda,
            window_sec,
        })
    }

    /// Which regression this predictor uses.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Predicts the viewing center `horizon_sec` seconds after the last
    /// sample. Returns `None` when `history` is empty; a single sample
    /// predicts itself. Infallible wrapper around [`Self::try_predict`].
    ///
    /// # Panics
    ///
    /// Panics if `horizon_sec` is negative or non-finite.
    pub fn predict(&self, history: &[SwitchingSample], horizon_sec: f64) -> Option<ViewCenter> {
        match self.try_predict(history, horizon_sec) {
            Ok(c) => c,
            // lint:allow(no-panic-paths, "documented panic: infallible wrapper; try_predict is the graceful API")
            Err(e) => panic!("invalid prediction request: {e}"),
        }
    }

    /// Fallible prediction: a bad horizon comes back as a
    /// [`PredictError`] instead of a panic. `Ok(None)` means an empty
    /// history — no prediction is possible, but nothing was invalid.
    pub fn try_predict(
        &self,
        history: &[SwitchingSample],
        horizon_sec: f64,
    ) -> Result<Option<ViewCenter>, PredictError> {
        if !(horizon_sec.is_finite() && horizon_sec >= 0.0) {
            return Err(PredictError::InvalidHorizon { horizon_sec });
        }
        Ok(self.predict_inner(history, horizon_sec))
    }

    /// The regression core, reached only with a validated horizon.
    fn predict_inner(&self, history: &[SwitchingSample], horizon_sec: f64) -> Option<ViewCenter> {
        let last = history.last()?;
        if matches!(self.kind, PredictorKind::LastSample) || history.len() == 1 {
            return Some(last.center);
        }
        // Restrict to the recent window.
        let t_end = last.t_sec;
        let start = t_end - self.window_sec;
        let window: Vec<&SwitchingSample> =
            history.iter().filter(|s| s.t_sec >= start - 1e-9).collect();
        if window.len() < 2 {
            return Some(last.center);
        }

        // Unwrap yaw into a continuous series.
        let mut yaw_unwrapped = Vec::with_capacity(window.len());
        let mut acc = window[0].center.yaw_deg();
        yaw_unwrapped.push(acc);
        for pair in window.windows(2) {
            let step = ee360_geom::angles::signed_yaw_diff_deg(
                pair[1].center.yaw_deg(),
                pair[0].center.yaw_deg(),
            );
            acc += step;
            yaw_unwrapped.push(acc);
        }

        let lambda = match self.kind {
            PredictorKind::Ridge | PredictorKind::RidgeQuadratic => self.lambda,
            // LastSample returned above; the OLS arm keeps the match
            // total without a panic path.
            PredictorKind::OrdinaryLeastSquares | PredictorKind::LastSample => 0.0,
        };
        // Regress against time relative to the window start (conditioning).
        let t0 = window[0].t_sec;
        let pitch_series: Vec<f64> = window.iter().map(|s| s.center.pitch_deg()).collect();
        let t_pred = (t_end - t0) + horizon_sec;
        if matches!(self.kind, PredictorKind::RidgeQuadratic) {
            let xs: Vec<Vec<f64>> = window
                .iter()
                .map(|s| {
                    let t = s.t_sec - t0;
                    vec![t, t * t]
                })
                .collect();
            let yaw_model = RidgeRegression::fit(&xs, &yaw_unwrapped, lambda).ok()?;
            let pitch_model = RidgeRegression::fit(&xs, &pitch_series, lambda).ok()?;
            let x_pred = [t_pred, t_pred * t_pred];
            return Some(ViewCenter::new(
                yaw_model.predict(&x_pred),
                pitch_model.predict(&x_pred),
            ));
        }
        // Single time feature: the allocation-free fast path, bit-identical
        // to `fit` on one-element rows (see `RidgeRegression::fit_single`).
        let ts: Vec<f64> = window.iter().map(|s| s.t_sec - t0).collect();
        let yaw_model = RidgeRegression::fit_single(&ts, &yaw_unwrapped, lambda).ok()?;
        let pitch_model = RidgeRegression::fit_single(&ts, &pitch_series, lambda).ok()?;
        Some(ViewCenter::new(
            yaw_model.predict(&[t_pred]),
            pitch_model.predict(&[t_pred]),
        ))
    }

    /// Prediction error in degrees against a known ground truth — the
    /// planar distance between prediction and truth.
    pub fn error_deg(
        &self,
        history: &[SwitchingSample],
        horizon_sec: f64,
        truth: ViewCenter,
    ) -> Option<f64> {
        self.predict(history, horizon_sec)
            .map(|p| p.distance_deg(&truth))
    }

    /// Point prediction plus the residual error quantile fitted online by
    /// `tracker` — the uncertainty-aware counterpart of [`Self::predict`].
    /// While the tracker is cold the quantile is 0° and the forecast
    /// degenerates to the point estimate.
    pub fn forecast(
        &self,
        history: &[SwitchingSample],
        horizon_sec: f64,
        tracker: &ResidualTracker,
    ) -> Option<ViewportForecast> {
        let center = self.predict(history, horizon_sec)?;
        Some(ViewportForecast {
            center,
            error_quantile_deg: tracker.width_deg(),
        })
    }
}

/// A viewport prediction with its uncertainty: the point estimate plus
/// the residual error quantile realised so far at this horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewportForecast {
    /// The point estimate (same value [`ViewportPredictor::predict`]
    /// returns).
    pub center: ViewCenter,
    /// The tracked residual quantile in degrees; 0.0 until the tracker
    /// has seen enough realised errors.
    pub error_quantile_deg: f64,
}

/// Online tracker of *realised* viewport prediction errors.
///
/// Each played segment reveals the true viewing center; feeding the
/// prediction error (degrees) into this tracker fits the residual
/// distribution with a deterministic [`QuantileSketch`], so the robust
/// controller can plan against "the error exceeded X° only 10% of the
/// time" instead of trusting the point estimate. Pure function of the
/// observation sequence — no clock, no RNG — so same-seed replays stay
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualTracker {
    sketch: QuantileSketch,
    quantile: f64,
    min_samples: usize,
}

impl ResidualTracker {
    /// Creates a tracker reporting the given error `quantile`, staying
    /// silent (width 0°) until `min_samples` errors have been observed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < quantile ≤ 1` and `min_samples ≥ 1`.
    pub fn new(cap: usize, quantile: f64, min_samples: usize) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "quantile must be in (0, 1], got {quantile}"
        );
        assert!(min_samples >= 1, "min_samples must be at least 1");
        Self {
            sketch: QuantileSketch::new(cap),
            quantile,
            min_samples,
        }
    }

    /// The evaluation default: p90 residual width over a 128-sample
    /// sketch, warming up after 8 realised errors.
    pub fn paper_default() -> Self {
        Self::new(128, 0.9, 8)
    }

    /// Feeds one realised prediction error.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite errors.
    pub fn observe_error_deg(&mut self, error_deg: f64) {
        assert!(
            error_deg.is_finite() && error_deg >= 0.0,
            "prediction errors must be non-negative, got {error_deg}"
        );
        self.sketch.observe(error_deg);
    }

    /// The tracked error quantile in degrees, or 0.0 while the tracker is
    /// still warming up (fewer than `min_samples` errors seen). Zero
    /// width is the signal that keeps the robust controller bit-identical
    /// to the point controller.
    pub fn width_deg(&self) -> f64 {
        if self.sketch.len() < self.min_samples {
            return 0.0;
        }
        self.sketch.quantile(self.quantile).unwrap_or(0.0)
    }

    /// Empirical probability that the realised error stays within
    /// `slack_deg` — an estimate of the viewport hit probability given
    /// that much angular slack. Optimistic 1.0 while warming up.
    pub fn hit_probability(&self, slack_deg: f64) -> f64 {
        if self.sketch.len() < self.min_samples {
            return 1.0;
        }
        self.sketch.fraction_at_or_below(slack_deg).unwrap_or(1.0)
    }

    /// Realised errors currently retained by the sketch.
    pub fn len(&self) -> usize {
        self.sketch.len()
    }

    /// `true` before the first realised error.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Drops all realised errors, as if freshly constructed.
    pub fn reset(&mut self) {
        self.sketch.reset();
    }
}

impl Default for ViewportPredictor {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pan_history(speed_deg_s: f64, n: usize, dt: f64) -> Vec<SwitchingSample> {
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                SwitchingSample::new(t, ViewCenter::new(speed_deg_s * t, 5.0))
            })
            .collect()
    }

    #[test]
    fn empty_history_is_none() {
        let p = ViewportPredictor::paper_default();
        assert!(p.predict(&[], 1.0).is_none());
    }

    #[test]
    fn single_sample_predicts_itself() {
        let p = ViewportPredictor::paper_default();
        let h = vec![SwitchingSample::new(0.0, ViewCenter::new(33.0, -12.0))];
        let c = p.predict(&h, 1.0).unwrap();
        assert_eq!(c, ViewCenter::new(33.0, -12.0));
    }

    #[test]
    fn static_gaze_predicts_static() {
        let p = ViewportPredictor::paper_default();
        let h: Vec<SwitchingSample> = (0..20)
            .map(|i| SwitchingSample::new(i as f64 * 0.1, ViewCenter::new(40.0, 10.0)))
            .collect();
        let c = p.predict(&h, 1.0).unwrap();
        assert!(c.distance_deg(&ViewCenter::new(40.0, 10.0)) < 0.5);
    }

    #[test]
    fn linear_pan_extrapolates() {
        let p = ViewportPredictor::paper_default();
        let h = pan_history(15.0, 21, 0.1); // 0..2 s
        let c = p.predict(&h, 0.5).unwrap();
        // Truth at t = 2.5 s: yaw 37.5.
        assert!(
            (c.yaw_deg() - 37.5).abs() < 1.5,
            "predicted {}",
            c.yaw_deg()
        );
        assert!((c.pitch_deg() - 5.0).abs() < 0.5);
    }

    #[test]
    fn pan_through_antimeridian() {
        let p = ViewportPredictor::paper_default();
        let h: Vec<SwitchingSample> = (0..21)
            .map(|i| {
                let t = i as f64 * 0.1;
                SwitchingSample::new(t, ViewCenter::new(170.0 + 10.0 * t, 0.0))
            })
            .collect();
        // Truth at t = 3.0: yaw 200 → wrapped −160.
        let c = p.predict(&h, 1.0).unwrap();
        assert!(
            ee360_geom::angles::angular_diff_deg(c.yaw_deg(), -160.0) < 2.0,
            "predicted {}",
            c.yaw_deg()
        );
    }

    #[test]
    fn last_sample_predictor_ignores_trend() {
        let p = ViewportPredictor::new(PredictorKind::LastSample, 0.0, 2.0);
        let h = pan_history(20.0, 11, 0.1);
        let c = p.predict(&h, 1.0).unwrap();
        assert!((c.yaw_deg() - 20.0).abs() < 1e-9); // last sample at t=1.0
    }

    #[test]
    fn ridge_more_stable_than_ols_under_noise() {
        // Noisy static gaze with a wild last sample: OLS chases the
        // outlier-heavy trend harder than ridge.
        let mut h: Vec<SwitchingSample> = (0..10)
            .map(|i| {
                let t = i as f64 * 0.2;
                let wobble = if i % 2 == 0 { 4.0 } else { -4.0 };
                SwitchingSample::new(t, ViewCenter::new(wobble, 0.0))
            })
            .collect();
        h.push(SwitchingSample::new(2.0, ViewCenter::new(25.0, 0.0)));
        let ridge = ViewportPredictor::new(PredictorKind::Ridge, 50.0, 3.0);
        let ols = ViewportPredictor::new(PredictorKind::OrdinaryLeastSquares, 0.0, 3.0);
        let truth = ViewCenter::new(0.0, 0.0);
        let e_ridge = ridge.error_deg(&h, 1.0, truth).unwrap();
        let e_ols = ols.error_deg(&h, 1.0, truth).unwrap();
        assert!(
            e_ridge < e_ols,
            "ridge {e_ridge} should beat OLS {e_ols} here"
        );
    }

    #[test]
    fn window_limits_history() {
        // Old motion outside the window must not influence the prediction.
        let p = ViewportPredictor::new(PredictorKind::Ridge, 0.01, 1.0);
        let mut h = pan_history(60.0, 11, 0.1); // fast pan 0..1 s
                                                // Then hold still from t=1.1 to 3.0.
        for i in 0..20 {
            let t = 1.1 + i as f64 * 0.1;
            h.push(SwitchingSample::new(t, ViewCenter::new(60.0, 5.0)));
        }
        let c = p.predict(&h, 1.0).unwrap();
        assert!(c.distance_deg(&ViewCenter::new(60.0, 5.0)) < 2.0);
    }

    #[test]
    fn quadratic_tracks_accelerating_pan_better() {
        // yaw(t) = 4 t²: an accelerating pan the linear model undershoots.
        let h: Vec<SwitchingSample> = (0..21)
            .map(|i| {
                let t = i as f64 * 0.1;
                SwitchingSample::new(t, ViewCenter::new(4.0 * t * t, 0.0))
            })
            .collect();
        let truth = ViewCenter::new(4.0 * 3.0 * 3.0, 0.0); // t = 3
        let linear = ViewportPredictor::new(PredictorKind::Ridge, 1e-6, 2.5);
        let quad = ViewportPredictor::new(PredictorKind::RidgeQuadratic, 1e-6, 2.5);
        let e_lin = linear.error_deg(&h, 1.0, truth).unwrap();
        let e_quad = quad.error_deg(&h, 1.0, truth).unwrap();
        assert!(
            e_quad < e_lin,
            "quadratic {e_quad} should beat linear {e_lin}"
        );
    }

    #[test]
    fn negative_horizon_is_a_typed_error() {
        let p = ViewportPredictor::paper_default();
        assert_eq!(
            p.try_predict(&pan_history(1.0, 5, 0.1), -1.0),
            Err(PredictError::InvalidHorizon { horizon_sec: -1.0 })
        );
        assert!(matches!(
            p.try_predict(&pan_history(1.0, 5, 0.1), f64::NAN),
            Err(PredictError::InvalidHorizon { .. })
        ));
        // A valid horizon on an empty history is Ok(None), not an error.
        assert_eq!(p.try_predict(&[], 1.0), Ok(None));
    }

    #[test]
    fn bad_config_is_a_typed_error() {
        assert_eq!(
            ViewportPredictor::try_new(PredictorKind::Ridge, -0.1, 1.0),
            Err(PredictError::NegativeLambda { lambda: -0.1 })
        );
        assert_eq!(
            ViewportPredictor::try_new(PredictorKind::Ridge, 0.1, 0.0),
            Err(PredictError::NonPositiveWindow { window_sec: 0.0 })
        );
        assert!(ViewportPredictor::try_new(PredictorKind::Ridge, 0.0, 2.0).is_ok());
    }

    #[test]
    fn predict_error_messages_name_the_field() {
        let e = PredictError::NegativeLambda { lambda: -0.1 };
        assert!(e.to_string().contains("lambda"));
        let e = PredictError::InvalidHorizon { horizon_sec: -1.0 };
        assert!(e.to_string().contains("horizon"));
        let e = PredictError::NonPositiveWindow { window_sec: 0.0 };
        assert!(e.to_string().contains("window"));
    }

    #[test]
    fn tracker_is_silent_until_warm_then_reports_quantile() {
        let mut tr = ResidualTracker::new(64, 0.9, 8);
        for i in 0..7 {
            tr.observe_error_deg(i as f64);
            assert_eq!(tr.width_deg(), 0.0, "cold tracker must report zero");
            assert_eq!(tr.hit_probability(0.0), 1.0);
        }
        tr.observe_error_deg(7.0); // 8th sample: warm
        let w = tr.width_deg();
        // p90 of {0..7} by linear interpolation: 6.3.
        assert!((w - 6.3).abs() < 1e-9, "width was {w}");
        assert!(tr.hit_probability(3.0) > 0.4 && tr.hit_probability(3.0) < 0.6);
        tr.reset();
        assert!(tr.is_empty());
        assert_eq!(tr.width_deg(), 0.0);
    }

    #[test]
    fn forecast_pairs_point_estimate_with_tracked_width() {
        let p = ViewportPredictor::paper_default();
        let h = pan_history(15.0, 21, 0.1);
        let mut tr = ResidualTracker::new(32, 0.9, 2);
        let cold = p.forecast(&h, 0.5, &tr).unwrap();
        assert_eq!(cold.error_quantile_deg, 0.0);
        assert_eq!(cold.center, p.predict(&h, 0.5).unwrap());
        tr.observe_error_deg(4.0);
        tr.observe_error_deg(8.0);
        let warm = p.forecast(&h, 0.5, &tr).unwrap();
        assert_eq!(warm.center, cold.center, "width must not move the point");
        assert!(warm.error_quantile_deg > 0.0);
    }

    #[test]
    fn forecast_empty_history_is_none() {
        let p = ViewportPredictor::paper_default();
        let tr = ResidualTracker::paper_default();
        assert!(p.forecast(&[], 1.0, &tr).is_none());
    }
}
