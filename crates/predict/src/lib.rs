//! Prediction: where the user will look, and how fast the network will be.
//!
//! Section IV-B of the paper:
//!
//! * **Viewport** — "The ridge regression model is applied to better
//!   predict the user's viewing area (i.e., the viewing center), since it
//!   is more robust to deal with overfitting." The recent (x, y) gaze
//!   coordinate time series is regressed against time and extrapolated one
//!   buffer-depth ahead. See [`viewport`].
//! * **Bandwidth** — "We use the harmonic mean of the downloading
//!   throughput of the past several segments to estimate the network
//!   bandwidth," which damps LTE bursts. See [`bandwidth`].
//!
//! Both modules also provide the naïve baselines used by the ablation
//! benches (last-sample and arithmetic-mean estimators, OLS prediction).
//!
//! # Example
//!
//! ```
//! use ee360_predict::bandwidth::{BandwidthEstimator, HarmonicMeanEstimator};
//!
//! let mut est = HarmonicMeanEstimator::new(5);
//! for bw in [4.0e6, 3.5e6, 30.0e6, 3.8e6] {
//!     est.observe(bw);
//! }
//! // The burst barely moves the harmonic mean.
//! assert!(est.estimate().unwrap() < 6.0e6);
//! ```

pub mod bandwidth;
pub mod forecast;
pub mod viewport;

pub use bandwidth::{
    ArithmeticMeanEstimator, BandwidthEstimator, BandwidthMargin, HarmonicMeanEstimator,
    LastSampleEstimator,
};
pub use forecast::ArForecaster;
pub use viewport::{
    PredictError, PredictorKind, ResidualTracker, ViewportForecast, ViewportPredictor,
};
