//! Bandwidth estimation from recent download throughputs.
//!
//! The paper uses the harmonic mean of the last several segments'
//! throughputs (Section IV-C); the arithmetic-mean and last-sample
//! estimators are provided as ablation baselines.

use std::collections::VecDeque;

use ee360_numeric::stats::harmonic_mean;

/// A windowed bandwidth estimator fed one throughput sample per downloaded
/// segment.
pub trait BandwidthEstimator {
    /// Records the throughput (bits per second) observed while downloading
    /// the latest segment.
    ///
    /// # Panics
    ///
    /// Implementations panic on non-positive or non-finite samples.
    fn observe(&mut self, throughput_bps: f64);

    /// The current estimate, or `None` before any observation.
    fn estimate(&self) -> Option<f64>;

    /// Drops all history.
    fn reset(&mut self);
}

fn validate(throughput_bps: f64) {
    assert!(
        throughput_bps.is_finite() && throughput_bps > 0.0,
        "throughput samples must be positive, got {throughput_bps}"
    );
}

/// The paper's estimator: harmonic mean over a sliding window.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicMeanEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl HarmonicMeanEstimator {
    /// Creates an estimator over the last `window` segments.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// The paper does not pin the window; five segments is the common MPC
    /// setting (robust-MPC lineage) and what the evaluation uses.
    pub fn paper_default() -> Self {
        Self::new(5)
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl BandwidthEstimator for HarmonicMeanEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            let v: Vec<f64> = self.samples.iter().copied().collect();
            Some(harmonic_mean(&v))
        }
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Ablation baseline: arithmetic mean over the same window.
#[derive(Debug, Clone, PartialEq)]
pub struct ArithmeticMeanEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl ArithmeticMeanEstimator {
    /// Creates an estimator over the last `window` segments.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }
}

impl BandwidthEstimator for ArithmeticMeanEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Ablation baseline: the last observed throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LastSampleEstimator {
    last: Option<f64>,
}

impl LastSampleEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BandwidthEstimator for LastSampleEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        self.last = Some(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        self.last
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimators_return_none() {
        assert_eq!(HarmonicMeanEstimator::paper_default().estimate(), None);
        assert_eq!(ArithmeticMeanEstimator::new(3).estimate(), None);
        assert_eq!(LastSampleEstimator::new().estimate(), None);
    }

    #[test]
    fn harmonic_mean_known_values() {
        let mut e = HarmonicMeanEstimator::new(3);
        for s in [2.0e6, 6.0e6, 6.0e6] {
            e.observe(s);
        }
        assert!((e.estimate().unwrap() - 3.6e6).abs() < 1e-3);
    }

    #[test]
    fn window_slides() {
        let mut e = HarmonicMeanEstimator::new(2);
        e.observe(1.0e6);
        e.observe(2.0e6);
        e.observe(2.0e6); // evicts the 1.0e6
        assert!((e.estimate().unwrap() - 2.0e6).abs() < 1e-6);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn harmonic_damps_burst_more_than_arithmetic() {
        let mut h = HarmonicMeanEstimator::new(5);
        let mut a = ArithmeticMeanEstimator::new(5);
        for s in [4.0e6, 4.0e6, 4.0e6, 4.0e6, 40.0e6] {
            h.observe(s);
            a.observe(s);
        }
        assert!(h.estimate().unwrap() < a.estimate().unwrap());
    }

    #[test]
    fn harmonic_is_conservative_lower_than_arithmetic() {
        let mut h = HarmonicMeanEstimator::new(4);
        let mut a = ArithmeticMeanEstimator::new(4);
        for s in [3.1e6, 5.7e6, 2.4e6, 8.0e6] {
            h.observe(s);
            a.observe(s);
        }
        assert!(h.estimate().unwrap() <= a.estimate().unwrap());
    }

    #[test]
    fn last_sample_tracks_latest() {
        let mut e = LastSampleEstimator::new();
        e.observe(3.0e6);
        e.observe(7.0e6);
        assert_eq!(e.estimate(), Some(7.0e6));
    }

    #[test]
    fn reset_clears_history() {
        let mut e = HarmonicMeanEstimator::new(3);
        e.observe(4.0e6);
        e.reset();
        assert_eq!(e.estimate(), None);
        assert!(e.is_empty());
        let mut l = LastSampleEstimator::new();
        l.observe(4.0e6);
        l.reset();
        assert_eq!(l.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_panics() {
        let mut e = HarmonicMeanEstimator::new(3);
        e.observe(0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = HarmonicMeanEstimator::new(0);
    }
}
