//! Bandwidth estimation from recent download throughputs.
//!
//! The paper uses the harmonic mean of the last several segments'
//! throughputs (Section IV-C); the arithmetic-mean and last-sample
//! estimators are provided as ablation baselines.

use std::collections::VecDeque;

use ee360_numeric::stats::harmonic_mean;
use ee360_support::quantile::QuantileSketch;

/// A windowed bandwidth estimator fed one throughput sample per downloaded
/// segment.
pub trait BandwidthEstimator {
    /// Records the throughput (bits per second) observed while downloading
    /// the latest segment.
    ///
    /// # Panics
    ///
    /// Implementations panic on non-positive or non-finite samples.
    fn observe(&mut self, throughput_bps: f64);

    /// The current estimate, or `None` before any observation.
    fn estimate(&self) -> Option<f64>;

    /// Drops all history.
    fn reset(&mut self);
}

fn validate(throughput_bps: f64) {
    assert!(
        throughput_bps.is_finite() && throughput_bps > 0.0,
        "throughput samples must be positive, got {throughput_bps}"
    );
}

/// The paper's estimator: harmonic mean over a sliding window.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicMeanEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl HarmonicMeanEstimator {
    /// Creates an estimator over the last `window` segments.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// The paper does not pin the window; five segments is the common MPC
    /// setting (robust-MPC lineage) and what the evaluation uses.
    pub fn paper_default() -> Self {
        Self::new(5)
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl BandwidthEstimator for HarmonicMeanEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            let v: Vec<f64> = self.samples.iter().copied().collect();
            Some(harmonic_mean(&v))
        }
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Ablation baseline: arithmetic mean over the same window.
#[derive(Debug, Clone, PartialEq)]
pub struct ArithmeticMeanEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl ArithmeticMeanEstimator {
    /// Creates an estimator over the last `window` segments.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }
}

impl BandwidthEstimator for ArithmeticMeanEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Ablation baseline: the last observed throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LastSampleEstimator {
    last: Option<f64>,
}

impl LastSampleEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BandwidthEstimator for LastSampleEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        validate(throughput_bps);
        self.last = Some(throughput_bps);
    }

    fn estimate(&self) -> Option<f64> {
        self.last
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Downside margin for a bandwidth estimate, fitted online from the
/// estimator's own realised errors.
///
/// After each download the client knows both what it *planned against*
/// (the harmonic-mean estimate) and what it *got* (the realised
/// throughput). The ratio `actual / estimated` streams into a
/// deterministic [`QuantileSketch`]; a downside quantile of that ratio
/// (p25 by default) is the multiplicative safety factor the robust
/// controller applies before the DP transition, so it plans against the
/// p25 bandwidth instead of the mean. Until enough ratios are observed
/// the factor is exactly 1.0 — the signal that keeps the robust
/// controller bit-identical to the point controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthMargin {
    sketch: QuantileSketch,
    /// Estimates seen alongside the ratios, so [`Self::factor_for`] can
    /// tell a *fresh* optimistic estimate from one that has already
    /// collapsed below its recent range.
    estimates: QuantileSketch,
    quantile: f64,
    min_samples: usize,
}

impl BandwidthMargin {
    /// Floor on the margin factor: even a pathological error history
    /// never scales the planning bandwidth below a tenth of the estimate.
    pub const MIN_FACTOR: f64 = 0.1;

    /// Creates a margin tracking the given downside `quantile` of the
    /// realised/estimated throughput ratio, inert until `min_samples`
    /// ratios have been observed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < quantile ≤ 1` and `min_samples ≥ 1`.
    pub fn new(cap: usize, quantile: f64, min_samples: usize) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "quantile must be in (0, 1], got {quantile}"
        );
        assert!(min_samples >= 1, "min_samples must be at least 1");
        Self {
            sketch: QuantileSketch::new(cap),
            estimates: QuantileSketch::new(cap),
            quantile,
            min_samples,
        }
    }

    /// The evaluation default: p25 downside ratio over a 128-sample
    /// sketch, warming up after 8 downloads.
    pub fn paper_default() -> Self {
        Self::new(128, 0.25, 8)
    }

    /// Records one realised outcome: the estimate the plan used and the
    /// throughput actually achieved.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite inputs.
    pub fn observe(&mut self, estimated_bps: f64, actual_bps: f64) {
        validate(estimated_bps);
        validate(actual_bps);
        self.sketch.observe(actual_bps / estimated_bps);
        self.estimates.observe(estimated_bps);
    }

    /// The multiplicative safety factor to apply to the next estimate:
    /// exactly 1.0 while warming up, otherwise the downside ratio
    /// quantile clamped to `[MIN_FACTOR, 1.0]` (over-delivery never
    /// inflates the plan).
    pub fn factor(&self) -> f64 {
        if self.sketch.len() < self.min_samples {
            return 1.0;
        }
        self.sketch
            .quantile(self.quantile)
            .unwrap_or(1.0)
            .clamp(Self::MIN_FACTOR, 1.0)
    }

    /// [`Self::factor`] guarded against double-counting: the downside
    /// ratios in the sketch were measured against estimates that had not
    /// yet priced a collapse in, so once the estimator itself has caught
    /// up — the current estimate sits in the bottom quartile of the
    /// estimates seen recently — deflating it *again* would charge the
    /// plan twice for the same outage. Returns 1.0 for such depressed
    /// estimates, the ordinary downside factor otherwise.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite `estimate_bps`.
    pub fn factor_for(&self, estimate_bps: f64) -> f64 {
        validate(estimate_bps);
        if let Some(floor) = self.depressed_floor() {
            if estimate_bps < floor {
                return 1.0;
            }
        }
        self.factor()
    }

    /// The depressed-estimate guard's threshold: the bottom quartile of
    /// the raw estimates observed recently, present once the margin is
    /// warm. Estimates below it already carry the collapse the ratio
    /// sketch measured, so [`Self::factor_for`] leaves them alone. The
    /// floor only moves when a sample arrives, so callers that plan more
    /// often than they observe can cache it instead of paying the sketch
    /// query per plan.
    pub fn depressed_floor(&self) -> Option<f64> {
        if self.sketch.len() >= self.min_samples {
            self.estimates.quantile(0.25)
        } else {
            None
        }
    }

    /// Ratios currently retained by the sketch.
    pub fn len(&self) -> usize {
        self.sketch.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Drops all history, as if freshly constructed.
    pub fn reset(&mut self) {
        self.sketch.reset();
        self.estimates.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimators_return_none() {
        assert_eq!(HarmonicMeanEstimator::paper_default().estimate(), None);
        assert_eq!(ArithmeticMeanEstimator::new(3).estimate(), None);
        assert_eq!(LastSampleEstimator::new().estimate(), None);
    }

    #[test]
    fn harmonic_mean_known_values() {
        let mut e = HarmonicMeanEstimator::new(3);
        for s in [2.0e6, 6.0e6, 6.0e6] {
            e.observe(s);
        }
        assert!((e.estimate().unwrap() - 3.6e6).abs() < 1e-3);
    }

    #[test]
    fn window_slides() {
        let mut e = HarmonicMeanEstimator::new(2);
        e.observe(1.0e6);
        e.observe(2.0e6);
        e.observe(2.0e6); // evicts the 1.0e6
        assert!((e.estimate().unwrap() - 2.0e6).abs() < 1e-6);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn harmonic_damps_burst_more_than_arithmetic() {
        let mut h = HarmonicMeanEstimator::new(5);
        let mut a = ArithmeticMeanEstimator::new(5);
        for s in [4.0e6, 4.0e6, 4.0e6, 4.0e6, 40.0e6] {
            h.observe(s);
            a.observe(s);
        }
        assert!(h.estimate().unwrap() < a.estimate().unwrap());
    }

    #[test]
    fn harmonic_is_conservative_lower_than_arithmetic() {
        let mut h = HarmonicMeanEstimator::new(4);
        let mut a = ArithmeticMeanEstimator::new(4);
        for s in [3.1e6, 5.7e6, 2.4e6, 8.0e6] {
            h.observe(s);
            a.observe(s);
        }
        assert!(h.estimate().unwrap() <= a.estimate().unwrap());
    }

    #[test]
    fn last_sample_tracks_latest() {
        let mut e = LastSampleEstimator::new();
        e.observe(3.0e6);
        e.observe(7.0e6);
        assert_eq!(e.estimate(), Some(7.0e6));
    }

    #[test]
    fn reset_clears_history() {
        let mut e = HarmonicMeanEstimator::new(3);
        e.observe(4.0e6);
        e.reset();
        assert_eq!(e.estimate(), None);
        assert!(e.is_empty());
        let mut l = LastSampleEstimator::new();
        l.observe(4.0e6);
        l.reset();
        assert_eq!(l.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_panics() {
        let mut e = HarmonicMeanEstimator::new(3);
        e.observe(0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = HarmonicMeanEstimator::new(0);
    }

    #[test]
    fn margin_is_unity_until_warm() {
        let mut m = BandwidthMargin::new(32, 0.25, 4);
        for _ in 0..3 {
            m.observe(10.0e6, 5.0e6); // persistent 2× over-estimate
            assert_eq!(m.factor(), 1.0, "cold margin must be inert");
        }
        m.observe(10.0e6, 5.0e6); // 4th sample: warm
        assert!((m.factor() - 0.5).abs() < 1e-12, "got {}", m.factor());
    }

    #[test]
    fn depressed_estimate_skips_the_margin() {
        let mut m = BandwidthMargin::new(64, 0.25, 4);
        // Normal operation: persistent 20% over-estimates at ~10 Mbps.
        for _ in 0..6 {
            m.observe(10.0e6, 8.0e6);
        }
        assert!((m.factor() - 0.8).abs() < 1e-12);
        // Once the estimator has priced a collapse in, the estimate sits
        // far below its recent range — deflating it again would charge
        // the plan twice for the same outage.
        assert_eq!(m.factor_for(1.0e6), 1.0);
        // An estimate inside the usual range still gets the margin.
        assert!((m.factor_for(10.0e6) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn margin_tracks_downside_quantile_of_ratio() {
        let mut m = BandwidthMargin::new(64, 0.25, 4);
        // Ratios 0.6, 0.8, 1.0, 1.2: p25 by interpolation is 0.75.
        for actual in [6.0e6, 8.0e6, 10.0e6, 12.0e6] {
            m.observe(10.0e6, actual);
        }
        assert!((m.factor() - 0.75).abs() < 1e-12, "got {}", m.factor());
    }

    #[test]
    fn margin_never_exceeds_unity_or_falls_below_floor() {
        let mut hi = BandwidthMargin::new(16, 0.25, 2);
        hi.observe(5.0e6, 10.0e6);
        hi.observe(5.0e6, 20.0e6); // over-delivery: ratios > 1
        assert_eq!(hi.factor(), 1.0);

        let mut lo = BandwidthMargin::new(16, 0.25, 2);
        lo.observe(100.0e6, 1.0); // catastrophic over-estimates
        lo.observe(100.0e6, 1.0);
        assert_eq!(lo.factor(), BandwidthMargin::MIN_FACTOR);
    }

    #[test]
    fn margin_reset_restores_unity() {
        let mut m = BandwidthMargin::new(16, 0.25, 1);
        m.observe(10.0e6, 5.0e6);
        assert!(m.factor() < 1.0);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn margin_rejects_bad_samples() {
        let mut m = BandwidthMargin::paper_default();
        m.observe(0.0, 5.0e6);
    }
}
