//! Multi-step bandwidth forecasting.
//!
//! The paper's harmonic-mean estimate is a single number for the whole MPC
//! horizon, which (as the ablations show) makes the DP effectively myopic.
//! This extension fits an AR(1) model to the recent throughput samples and
//! rolls it forward, giving the MPC a *time-varying* forecast — the
//! ingredient that lets the horizon do real work.

use std::collections::VecDeque;

use ee360_numeric::ridge::RidgeRegression;

/// An AR(1) throughput forecaster: `x_{t+1} ≈ a + b·x_t`, fitted by ridge
/// regression over a sliding window and iterated forward.
#[derive(Debug, Clone, PartialEq)]
pub struct ArForecaster {
    window: usize,
    samples: VecDeque<f64>,
}

ee360_support::impl_json_struct!(ArForecaster { window, samples });

impl ArForecaster {
    /// Creates a forecaster over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window < 3` (an AR(1) fit needs at least two lag pairs).
    pub fn new(window: usize) -> Self {
        assert!(window >= 3, "window must be at least 3");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Ten samples of history: enough to see a trend, short enough to
    /// track LTE regime changes.
    pub fn paper_default() -> Self {
        Self::new(10)
    }

    /// Records the throughput of the latest download.
    ///
    /// # Panics
    ///
    /// Panics if the sample is not strictly positive.
    pub fn observe(&mut self, throughput_bps: f64) {
        assert!(
            throughput_bps.is_finite() && throughput_bps > 0.0,
            "throughput samples must be positive"
        );
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput_bps);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Forecasts the next `steps` throughputs, bits per second.
    ///
    /// Returns `None` until at least three samples have been observed.
    /// Forecasts are floored at half the smallest observed sample (an AR
    /// extrapolation must never promise the MPC a collapse to zero or an
    /// unbounded boom — the fit is clamped to the observed regime).
    pub fn forecast(&self, steps: usize) -> Option<Vec<f64>> {
        if self.samples.len() < 3 || steps == 0 {
            return if steps == 0 && self.samples.len() >= 3 {
                Some(Vec::new())
            } else {
                None
            };
        }
        let v: Vec<f64> = self.samples.iter().copied().collect();
        let xs: Vec<Vec<f64>> = v[..v.len() - 1].iter().map(|x| vec![*x]).collect();
        let ys: Vec<f64> = v[1..].to_vec();
        let model = RidgeRegression::fit(&xs, &ys, 1e3).ok()?;
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min) * 0.5;
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max) * 1.5;
        let mut out = Vec::with_capacity(steps);
        let mut x = *v.last()?;
        for _ in 0..steps {
            x = model.predict(&[x]).clamp(lo, hi);
            out.push(x);
        }
        Some(out)
    }

    /// Drops all history.
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_three_samples() {
        let mut f = ArForecaster::paper_default();
        assert!(f.forecast(3).is_none());
        f.observe(3.0e6);
        f.observe(3.1e6);
        assert!(f.forecast(3).is_none());
        f.observe(3.2e6);
        assert!(f.forecast(3).is_some());
    }

    #[test]
    fn flat_history_forecasts_flat() {
        let mut f = ArForecaster::paper_default();
        for _ in 0..8 {
            f.observe(4.0e6);
        }
        let fc = f.forecast(5).unwrap();
        for v in fc {
            assert!((v - 4.0e6).abs() < 0.2e6, "got {v}");
        }
    }

    #[test]
    fn rising_trend_forecasts_higher() {
        let mut f = ArForecaster::paper_default();
        for i in 0..10 {
            f.observe(2.0e6 + i as f64 * 0.4e6);
        }
        let fc = f.forecast(3).unwrap();
        let last = 2.0e6 + 9.0 * 0.4e6;
        assert!(fc[0] > last * 0.9);
        assert!(fc.windows(2).all(|w| w[1] >= w[0] * 0.99));
    }

    #[test]
    fn falling_trend_forecasts_lower_but_floored() {
        let mut f = ArForecaster::paper_default();
        for i in 0..10 {
            f.observe(8.0e6 - i as f64 * 0.7e6);
        }
        let fc = f.forecast(10).unwrap();
        let min_seen = 8.0e6 - 9.0 * 0.7e6;
        for v in &fc {
            assert!(*v >= min_seen * 0.5 - 1.0, "forecast {v} below floor");
            assert!(*v > 0.0);
        }
    }

    #[test]
    fn forecast_is_bounded_by_regime() {
        let mut f = ArForecaster::paper_default();
        for s in [3.0e6, 5.0e6, 4.0e6, 6.0e6, 3.5e6, 4.5e6] {
            f.observe(s);
        }
        let fc = f.forecast(8).unwrap();
        for v in fc {
            assert!((1.5e6..=9.0e6).contains(&v), "forecast {v} left the regime");
        }
    }

    #[test]
    fn zero_steps_is_empty() {
        let mut f = ArForecaster::paper_default();
        for _ in 0..4 {
            f.observe(4.0e6);
        }
        assert_eq!(f.forecast(0).unwrap().len(), 0);
    }

    #[test]
    fn window_slides_and_reset_clears() {
        let mut f = ArForecaster::new(3);
        for s in [1.0e6, 2.0e6, 3.0e6, 4.0e6] {
            f.observe(s);
        }
        assert_eq!(f.len(), 3);
        f.reset();
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_window_panics() {
        let _ = ArForecaster::new(2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_sample_panics() {
        let mut f = ArForecaster::paper_default();
        f.observe(0.0);
    }
}
