/root/repo/target/debug/deps/ee360_support-e14201ba53af1c34.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/json.rs crates/support/src/parallel.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/ee360_support-e14201ba53af1c34: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/json.rs crates/support/src/parallel.rs crates/support/src/prop.rs crates/support/src/rng.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/json.rs:
crates/support/src/parallel.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/support
