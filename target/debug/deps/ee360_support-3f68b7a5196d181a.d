/root/repo/target/debug/deps/ee360_support-3f68b7a5196d181a.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/json.rs crates/support/src/parallel.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/libee360_support-3f68b7a5196d181a.rlib: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/json.rs crates/support/src/parallel.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/libee360_support-3f68b7a5196d181a.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/json.rs crates/support/src/parallel.rs crates/support/src/prop.rs crates/support/src/rng.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/json.rs:
crates/support/src/parallel.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
