//! Quickstart: stream one video with the paper's energy-aware controller.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the synthetic dataset for one video, constructs Ptiles from the
//! training users, streams it for one evaluation user over the LTE trace
//! with the `Ours` controller, and prints the energy/QoE summary.

use ee360::abr::controller::Scheme;
use ee360::cluster::ptile::PtileConfig;
use ee360::core::client::{run_session, SessionSetup};
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::power::model::Phone;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::head::GazeConfig;
use ee360::trace::network::NetworkTrace;
use ee360::video::catalog::VideoCatalog;

fn main() {
    // 1. Pick a video from the Table III catalog.
    let catalog = VideoCatalog::paper_default();
    let spec = catalog.video(2).expect("video 2 exists");
    println!(
        "streaming video {}: {} ({} s)",
        spec.id, spec.name, spec.duration_sec
    );

    // 2. Generate the user population and split train/eval.
    let traces = VideoTraces::generate(spec, 48, 42, GazeConfig::default());
    let (train, eval) = traces.split(40, 42);

    // 3. Server side: construct the Ptiles from the training users.
    let server = VideoServer::prepare(
        spec,
        &train,
        TileGrid::paper_default(),
        PtileConfig::paper_default(),
    );
    let multi = server.coverage_stats(&eval).mean_coverage();
    println!("Ptile coverage of evaluation users: {:.1}%", multi * 100.0);

    // 4. Client side: stream over the paper's LTE trace 2 on a Pixel 3.
    let network = NetworkTrace::paper_trace2(spec.duration_sec as usize + 60, 42);
    let metrics = run_session(
        Scheme::Ours,
        &SessionSetup {
            server: &server,
            user: eval[0],
            network: &network,
            phone: Phone::Pixel3,
            max_segments: None,
        },
    );

    // 5. Report.
    let breakdown = metrics.energy_breakdown_mj();
    println!("\nsession over {} segments:", metrics.len());
    println!(
        "  energy      {:.1} J  (transmission {:.1} J, decode {:.1} J, render {:.1} J)",
        metrics.total_energy_mj() / 1000.0,
        breakdown.transmission_mj / 1000.0,
        breakdown.decode_mj / 1000.0,
        breakdown.render_mj / 1000.0,
    );
    println!(
        "  QoE         {:.1} (quality {:.1}, variation {:.2}, rebuffering {:.2})",
        metrics.mean_qoe(),
        metrics.mean_quality(),
        metrics.mean_variation(),
        metrics.mean_rebuffering(),
    );
    println!(
        "  stalls      {} events, {:.2} s total",
        metrics.stall_count(),
        metrics.total_stall_sec()
    );
    println!(
        "  decisions   mean quality level {:.2}, mean frame rate {:.1} fps",
        metrics.mean_quality_level(),
        metrics.mean_fps()
    );
}
