//! Importing the real MMSys'17 dataset.
//!
//! ```sh
//! cargo run --release --example import_dataset [path/to/user_video.csv]
//! ```
//!
//! Without an argument, writes a tiny synthetic file in the dataset's CSV
//! layout and imports that — demonstrating the full path from the
//! published data format to our [`HeadTrace`] and the Fig. 5 statistics.

use std::fmt::Write as _;

use ee360::trace::head::HeadTrace;
use ee360::trace::mmsys;

fn main() {
    let (path, cleanup) = match std::env::args().nth(1) {
        Some(p) => (std::path::PathBuf::from(p), false),
        None => {
            let mut p = std::env::temp_dir();
            p.push("ee360-import-demo.csv");
            std::fs::write(&p, demo_csv()).expect("write demo CSV");
            println!(
                "no file given — wrote a synthetic demo file to {}",
                p.display()
            );
            (p, true)
        }
    };

    match mmsys::load_head_trace(&path, 1, 0) {
        Ok(trace) => report(&trace),
        Err(e) => {
            eprintln!("import failed: {e}");
            std::process::exit(1);
        }
    }
    if cleanup {
        let _ = std::fs::remove_file(&path);
    }
}

fn report(trace: &HeadTrace) {
    println!(
        "\nimported trace: video {}, user {}, {} samples over {:.1} s",
        trace.video_id(),
        trace.user_id(),
        trace.len(),
        trace.duration_sec()
    );
    let speeds = trace.switching_speeds();
    if !speeds.is_empty() {
        let above10 = speeds.iter().filter(|s| **s > 10.0).count() as f64 / speeds.len() as f64;
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        println!(
            "switching speed: mean {mean:.1}°/s, above 10°/s {:.0}% of the time",
            above10 * 100.0
        );
    }
    println!("\nsegment-level viewing centers (first 5 segments):");
    for k in 0..5usize {
        match trace.segment_center(k) {
            Some(c) => println!(
                "  segment {k}: yaw {:>7.1}°, pitch {:>6.1}°",
                c.yaw_deg(),
                c.pitch_deg()
            ),
            None => break,
        }
    }
    println!("\nthis trace can now drive any experiment: pass it as an evaluation");
    println!("user to ee360::core::client::run_session (see examples/quickstart.rs)");
}

/// A synthetic file in the dataset's layout: a slow pan with a quaternion
/// rotating about the up axis.
fn demo_csv() -> String {
    let mut out = String::from(
        "Timestamp,PlaybackTime,UnitQuaternion.w,UnitQuaternion.x,UnitQuaternion.y,UnitQuaternion.z,HmdPosition.x,HmdPosition.y,HmdPosition.z\n",
    );
    for i in 0..300 {
        let t = i as f64 * 0.02; // 50 Hz, 6 s
        let angle = t * 12.0_f64.to_radians(); // 12°/s pan
        let _ = writeln!(
            out,
            "{:.3},{:.3},{:.6},0.0,{:.6},0.0,0.0,0.0,0.0",
            1000.0 + t,
            t,
            (angle / 2.0).cos(),
            (angle / 2.0).sin(),
        );
    }
    out
}
