//! Many phones, one cell: what Ptile adoption does to a shared link.
//!
//! ```sh
//! cargo run --release --example cell_contention
//! ```
//!
//! Runs K concurrent clients behind one LTE cell with processor-sharing,
//! comparing an all-Ctile population against an all-Ptile(Ours-style)
//! population: the Ptile clients' smaller payloads decongest the cell for
//! everyone.

use ee360::abr::baselines::RateBasedController;
use ee360::abr::controller::{Controller, Scheme};
use ee360::abr::plan::SegmentContext;
use ee360::core::report::TableWriter;
use ee360::sim::multiclient::{simulate_shared_link, MulticlientConfig};
use ee360::trace::network::NetworkTrace;
use ee360::video::content::SiTi;

/// Adapts a scheme controller into the shared-link planner interface,
/// recording each chosen quality level into `qualities`.
fn planner_for(
    scheme: Scheme,
    qualities: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
) -> Box<dyn FnMut(usize, f64, f64) -> f64> {
    let mut controller = RateBasedController::new(scheme);
    Box::new(move |index, buffer_sec, est_bps| {
        let ctx = SegmentContext {
            index,
            upcoming: vec![SiTi::new(60.0, 25.0)],
            predicted_bandwidth_bps: est_bps.max(1.0e5),
            buffer_sec,
            switching_speed_deg_s: 8.0,
            ptile_available: true,
            ptile_area_frac: 9.0 / 32.0,
            background_blocks: 3,
            ftile_fov_area: 0.0,
            ftile_fov_tiles: 0,
        };
        let plan = controller.plan(&ctx);
        qualities.borrow_mut().push(plan.quality.index());
        plan.bits
    })
}

fn main() {
    // One macro-cell worth of capacity shared by the population.
    let cell = NetworkTrace::paper_trace2(600, 77).scaled(4.0); // ~15.6 Mbps
    let config = MulticlientConfig {
        segments: 120,
        ..Default::default()
    };

    println!(
        "shared cell ≈ {:.1} Mbps, 120 segments per client\n",
        cell.mean_bps() / 1e6
    );
    let mut table = TableWriter::new(vec![
        "population",
        "clients",
        "mean bits/seg [Mb]",
        "mean quality lvl",
        "mean stall [s]",
    ]);

    for &clients in &[2usize, 4, 6, 8, 12] {
        for scheme in [Scheme::Ctile, Scheme::Ptile] {
            let quality_logs: Vec<_> = (0..clients)
                .map(|_| std::rc::Rc::new(std::cell::RefCell::new(Vec::new())))
                .collect();
            let planners = quality_logs
                .iter()
                .map(|log| planner_for(scheme, log.clone()))
                .collect();
            let outcomes = simulate_shared_link(&cell, config, planners);
            let mean_bits = outcomes
                .iter()
                .map(|o| o.mean_bits_per_segment)
                .sum::<f64>()
                / clients as f64
                / 1e6;
            let mean_stall =
                outcomes.iter().map(|o| o.total_stall_sec).sum::<f64>() / clients as f64;
            let (q_sum, q_n) = quality_logs.iter().fold((0usize, 0usize), |(s, n), log| {
                let log = log.borrow();
                (s + log.iter().sum::<usize>(), n + log.len())
            });
            table.row(vec![
                format!("all {}", scheme.label()),
                format!("{clients}"),
                format!("{mean_bits:.2}"),
                format!("{:.2}", q_sum as f64 / q_n.max(1) as f64),
                format!("{mean_stall:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!("at equal cell load, Ptile clients hold much higher quality levels —");
    println!("the paper's per-device saving is also a network-capacity story.");
}
