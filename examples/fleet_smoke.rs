//! Fleet smoke: a 10k-session event-driven fleet, offline + deterministic.
//!
//! ```sh
//! cargo run --release --example fleet_smoke
//! cargo run --release --example fleet_smoke -- --timeseries --sample-rate 0.01 --slo
//! ```
//!
//! Runs the `sim::fleet` scale engine over a seeded chaos plan and
//! verifies the fleet contract `scripts/ci.sh` gates on:
//!
//! 1. the fleet completes every segment slot (delivered + skipped),
//! 2. two same-seed runs serialize byte-identically (fleet report JSON
//!    *and* the folded obs report),
//! 3. the worker count does not change a single byte of either,
//! 4. the folded registry carries the `fleet.*` keys with reconciling
//!    values (sessions counter = config, segments counter = report).
//!
//! With `--timeseries` (optionally `--sample-rate <frac>` and `--slo`)
//! the telemetry pipeline runs too, and the smoke additionally verifies:
//!
//! 5. `results/fleet_timeseries.json` is byte-identical at 1/4/16
//!    threads,
//! 6. the windowed series reconciles against the whole-run report —
//!    integer-exact counters, bit-exact f64 accumulators,
//! 7. the sampled-session set is a pure function of the seed, and the
//!    SLO report card carries a verdict per objective.
//!
//! Writes `results/fleet_report.json` (+ `results/fleet_timeseries.json`
//! when telemetry is on) and exits non-zero if any check fails.

use ee360::obs::{default_slos, export, Level, Recorder, SloSpec, TelemetryConfig};
use ee360::sim::fleet::{
    fleet_timeseries_json, run_scale_fleet_telemetry, EngineStats, FleetConfig, FleetReport,
    FleetTelemetry,
};
use ee360::trace::fault::{FaultConfig, FaultPlan};
use ee360::trace::network::NetworkTrace;
use ee360_support::json::{to_string, to_string_pretty, Json, ToJson};

const SESSIONS: usize = 10_000;
const SEGMENTS: usize = 8;
const SEED: u64 = 2022;
const WINDOW_SEC: f64 = 5.0;
const EXEMPLAR_K: u32 = 8;

struct SmokeArgs {
    telemetry: TelemetryConfig,
    slos: Vec<SloSpec>,
}

fn parse_args() -> SmokeArgs {
    let args: Vec<String> = std::env::args().collect();
    let mut telemetry = TelemetryConfig::off();
    let mut slos = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        match arg.as_str() {
            "--timeseries" => {
                telemetry.window_sec = WINDOW_SEC;
                telemetry.exemplar_k = EXEMPLAR_K;
            }
            "--sample-rate" => {
                let rate: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--sample-rate takes a fraction, e.g. 0.01");
                assert!(
                    (0.0..=1.0).contains(&rate),
                    "--sample-rate must be in [0, 1]"
                );
                telemetry.sample_ppm = (rate * 1_000_000.0).round() as u32;
            }
            "--slo" => slos = default_slos(),
            _ => {}
        }
    }
    SmokeArgs { telemetry, slos }
}

struct RunOut {
    report: FleetReport,
    stats: EngineStats,
    rec: Recorder,
    report_json: String,
    obs_json: String,
    telemetry: Option<FleetTelemetry>,
    timeseries_json: Option<String>,
}

fn run(threads: usize, args: &SmokeArgs) -> RunOut {
    let network = NetworkTrace::paper_trace2(300, 11);
    let faults = FaultPlan::generate(FaultConfig::chaos_default(), 300.0, 42).and_outage(40.0, 6.0);
    let config = FleetConfig::new(SESSIONS, SEGMENTS, SEED)
        .with_threads(threads)
        .with_telemetry(args.telemetry);
    let mut rec = Recorder::new(Level::Summary);
    let (report, stats, telemetry) =
        run_scale_fleet_telemetry(&config, &network, &faults, &mut rec);
    let report_json = to_string(&report).expect("fleet report serializes");
    let obs_json = to_string(&export::report_json(&rec)).expect("obs report serializes");
    let timeseries_json = telemetry.as_ref().map(|tel| {
        to_string_pretty(&fleet_timeseries_json(&config, &report, tel, &args.slos))
            .expect("timeseries artifact serializes")
    });
    RunOut {
        report,
        stats,
        rec,
        report_json,
        obs_json,
        telemetry,
        timeseries_json,
    }
}

fn main() {
    let args = parse_args();
    println!("fleet smoke: {SESSIONS} sessions x {SEGMENTS} segments, seeded chaos");
    if args.telemetry.enabled() {
        println!(
            "  telemetry: window {:.1} s, sample {} ppm, exemplar k={}, {} SLOs",
            args.telemetry.window_sec,
            args.telemetry.sample_ppm,
            args.telemetry.exemplar_k,
            args.slos.len()
        );
    }

    // 1. Completion.
    let out = run(1, &args);
    let report = out.report;
    assert_eq!(
        report.segments,
        SESSIONS * SEGMENTS,
        "every slot must be consumed"
    );
    assert_eq!(
        report.delivered + report.skipped,
        report.segments,
        "slots are delivered or skipped, nothing else"
    );
    assert!(
        !report.counters.is_clean(),
        "chaos plan must leave a resilience trace"
    );
    println!(
        "  completed: {} delivered, {} skipped, mean QoE {:.2}, {} events",
        report.delivered, report.skipped, report.mean_qoe, out.stats.events
    );

    // 2. Same-seed replay, byte for byte.
    let replay = run(1, &args);
    assert_eq!(
        out.report_json, replay.report_json,
        "fleet report must replay"
    );
    assert_eq!(out.obs_json, replay.obs_json, "obs report must replay");
    assert_eq!(
        out.timeseries_json, replay.timeseries_json,
        "timeseries artifact must replay"
    );
    println!(
        "  replay: byte-identical (report {} B)",
        out.report_json.len()
    );

    // 3. Thread-count independence.
    for threads in [4usize, 16] {
        let threaded = run(threads, &args);
        assert_eq!(
            out.report_json, threaded.report_json,
            "{threads} threads changed the fleet report"
        );
        assert_eq!(
            out.obs_json, threaded.obs_json,
            "{threads} threads changed the obs report"
        );
        assert_eq!(
            out.timeseries_json, threaded.timeseries_json,
            "{threads} threads changed the timeseries artifact"
        );
    }
    println!("  threads: 1/4/16 byte-identical");

    // 4. Registry keys present and reconciling.
    let reg = out.rec.registry();
    assert_eq!(
        reg.counter("fleet.sessions"),
        SESSIONS as u64,
        "fleet.sessions must equal the configured fleet size"
    );
    assert_eq!(
        reg.counter("fleet.segments"),
        report.segments as u64,
        "fleet.segments must reconcile with the report"
    );
    assert_eq!(reg.counter("fleet.delivered"), report.delivered as u64);
    assert_eq!(reg.counter("fleet.skipped"), report.skipped as u64);
    assert_eq!(reg.counter("fleet.events.replan"), report.replans);
    let qoe_hist = reg
        .histogram("fleet.session_qoe")
        .expect("fleet.session_qoe histogram present");
    assert_eq!(qoe_hist.count(), SESSIONS as u64);
    println!("  registry: fleet.* keys present and reconciling");

    // 5–7. Telemetry pipeline checks.
    if let Some(tel) = out.telemetry.as_ref() {
        let series = tel.series.as_ref().expect("--timeseries implies windows");
        let last = series.final_row().expect("series has windows");
        assert_eq!(last.segments as usize, report.segments);
        assert_eq!(last.delivered as usize, report.delivered);
        assert_eq!(last.skipped as usize, report.skipped);
        assert_eq!(
            last.stall_sec.to_bits(),
            report.total_stall_sec.to_bits(),
            "cumulative stall must be bit-exact vs the report"
        );
        assert_eq!(last.energy_mj.to_bits(), report.total_energy_mj.to_bits());
        assert_eq!(last.bits.to_bits(), report.total_bits.to_bits());
        println!(
            "  timeseries: {} windows, final row reconciles bit-exactly",
            series.len()
        );
        if args.telemetry.sampling_enabled() {
            assert!(
                !tel.traces.is_empty(),
                "a 1% sample of 10k sessions must keep traces"
            );
            println!(
                "  sampling: {} sessions kept Detail traces ({} events)",
                tel.traces.len(),
                tel.trace_events()
            );
        }
        let ex = tel
            .exemplars
            .as_ref()
            .expect("--timeseries implies exemplars");
        assert!(!ex.worst_stall.is_empty() && !ex.worst_qoe.is_empty());
        println!(
            "  exemplars: worst stall {:.2} s (session {}), worst QoE {:.2} (session {})",
            ex.worst_stall.entries()[0].0,
            ex.worst_stall.entries()[0].1.session,
            ex.worst_qoe.entries()[0].0,
            ex.worst_qoe.entries()[0].1.session
        );
    }

    // Export: fleet report + obs report in one artifact.
    let artifact = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("ee360-fleet-smoke-v1".to_string()),
        ),
        ("sessions".to_string(), Json::Int(SESSIONS as i64)),
        (
            "segments_per_session".to_string(),
            Json::Int(SEGMENTS as i64),
        ),
        ("seed".to_string(), Json::Int(SEED as i64)),
        ("fleet_report".to_string(), report.to_json()),
        ("obs_report".to_string(), export::report_json(&out.rec)),
    ]);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(
        "results/fleet_report.json",
        to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .expect("write results/fleet_report.json");
    println!("  wrote results/fleet_report.json");
    if let Some(ts) = out.timeseries_json.as_ref() {
        std::fs::write("results/fleet_timeseries.json", ts)
            .expect("write results/fleet_timeseries.json");
        println!("  wrote results/fleet_timeseries.json");
    }
    println!("fleet contract held: deterministic, thread-independent, reconciled");
}
