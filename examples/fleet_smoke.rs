//! Fleet smoke: a 10k-session event-driven fleet, offline + deterministic.
//!
//! ```sh
//! cargo run --release --example fleet_smoke
//! ```
//!
//! Runs the `sim::fleet` scale engine over a seeded chaos plan and
//! verifies the fleet contract `scripts/ci.sh` gates on:
//!
//! 1. the fleet completes every segment slot (delivered + skipped),
//! 2. two same-seed runs serialize byte-identically (fleet report JSON
//!    *and* the folded obs report),
//! 3. the worker count does not change a single byte of either,
//! 4. the folded registry carries the `fleet.*` keys with reconciling
//!    values (sessions counter = config, segments counter = report).
//!
//! Writes `results/fleet_report.json` (fleet report + obs report) and
//! exits non-zero if any check fails.

use ee360::obs::{export, Level, Recorder};
use ee360::sim::fleet::{run_scale_fleet, EngineStats, FleetConfig, FleetReport};
use ee360::trace::fault::{FaultConfig, FaultPlan};
use ee360::trace::network::NetworkTrace;
use ee360_support::json::{to_string, to_string_pretty, Json, ToJson};

const SESSIONS: usize = 10_000;
const SEGMENTS: usize = 8;
const SEED: u64 = 2022;

fn run(threads: usize) -> (FleetReport, EngineStats, Recorder, String, String) {
    let network = NetworkTrace::paper_trace2(300, 11);
    let faults = FaultPlan::generate(FaultConfig::chaos_default(), 300.0, 42).and_outage(40.0, 6.0);
    let config = FleetConfig::new(SESSIONS, SEGMENTS, SEED).with_threads(threads);
    let mut rec = Recorder::new(Level::Summary);
    let (report, stats) = run_scale_fleet(&config, &network, &faults, &mut rec);
    let report_json = to_string(&report).expect("fleet report serializes");
    let obs_json = to_string(&export::report_json(&rec)).expect("obs report serializes");
    (report, stats, rec, report_json, obs_json)
}

fn main() {
    println!("fleet smoke: {SESSIONS} sessions x {SEGMENTS} segments, seeded chaos");

    // 1. Completion.
    let (report, stats, rec, report_json, obs_json) = run(1);
    assert_eq!(
        report.segments,
        SESSIONS * SEGMENTS,
        "every slot must be consumed"
    );
    assert_eq!(
        report.delivered + report.skipped,
        report.segments,
        "slots are delivered or skipped, nothing else"
    );
    assert!(
        !report.counters.is_clean(),
        "chaos plan must leave a resilience trace"
    );
    println!(
        "  completed: {} delivered, {} skipped, mean QoE {:.2}, {} events",
        report.delivered, report.skipped, report.mean_qoe, stats.events
    );

    // 2. Same-seed replay, byte for byte.
    let (_, _, _, replay_report, replay_obs) = run(1);
    assert_eq!(report_json, replay_report, "fleet report must replay");
    assert_eq!(obs_json, replay_obs, "obs report must replay");
    println!("  replay: byte-identical (report {} B)", report_json.len());

    // 3. Thread-count independence.
    for threads in [4usize, 16] {
        let (_, _, _, threaded_report, threaded_obs) = run(threads);
        assert_eq!(
            report_json, threaded_report,
            "{threads} threads changed the fleet report"
        );
        assert_eq!(
            obs_json, threaded_obs,
            "{threads} threads changed the obs report"
        );
    }
    println!("  threads: 1/4/16 byte-identical");

    // 4. Registry keys present and reconciling.
    let reg = rec.registry();
    assert_eq!(
        reg.counter("fleet.sessions"),
        SESSIONS as u64,
        "fleet.sessions must equal the configured fleet size"
    );
    assert_eq!(
        reg.counter("fleet.segments"),
        report.segments as u64,
        "fleet.segments must reconcile with the report"
    );
    assert_eq!(reg.counter("fleet.delivered"), report.delivered as u64);
    assert_eq!(reg.counter("fleet.skipped"), report.skipped as u64);
    assert_eq!(reg.counter("fleet.events.replan"), report.replans);
    let qoe_hist = reg
        .histogram("fleet.session_qoe")
        .expect("fleet.session_qoe histogram present");
    assert_eq!(qoe_hist.count(), SESSIONS as u64);
    println!("  registry: fleet.* keys present and reconciling");

    // Export: fleet report + obs report in one artifact.
    let artifact = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("ee360-fleet-smoke-v1".to_string()),
        ),
        ("sessions".to_string(), Json::Int(SESSIONS as i64)),
        (
            "segments_per_session".to_string(),
            Json::Int(SEGMENTS as i64),
        ),
        ("seed".to_string(), Json::Int(SEED as i64)),
        ("fleet_report".to_string(), report.to_json()),
        ("obs_report".to_string(), export::report_json(&rec)),
    ]);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(
        "results/fleet_report.json",
        to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .expect("write results/fleet_report.json");
    println!("  wrote results/fleet_report.json");
    println!("fleet contract held: deterministic, thread-independent, reconciled");
}
