//! Server-side cost of hosting the Ptile ladder.
//!
//! ```sh
//! cargo run --release --example server_storage
//! ```
//!
//! Ptiles save the *client* energy, but the server must store extra
//! representations (every Ptile × 5 qualities × 4 frame rates). This
//! example builds each video's manifest and prices that storage next to
//! the conventional catalog.

use ee360::cluster::ptile::PtileConfig;
use ee360::core::report::TableWriter;
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::head::GazeConfig;
use ee360::video::catalog::VideoCatalog;
use ee360::video::ladder::EncodingLadder;
use ee360::video::manifest::{RepresentationKind, VideoManifest};
use ee360::video::segment::SegmentTimeline;
use ee360::video::size_model::SizeModel;

fn main() {
    let catalog = VideoCatalog::paper_default();
    let model = SizeModel::paper_default();
    let ladder = EncodingLadder::paper_default();

    println!("server storage per video (GB), conventional catalog vs + Ptile ladder:\n");
    let mut table = TableWriter::new(vec![
        "video",
        "content",
        "tiles+whole [GB]",
        "with Ptiles [GB]",
        "overhead",
    ]);
    for spec in catalog.videos() {
        // Construct the per-segment Ptile areas exactly as the server does.
        let traces = VideoTraces::generate(spec, 48, 20220706, GazeConfig::default());
        let (train, _) = traces.split(40, 20220706);
        let server = VideoServer::prepare(
            spec,
            &train,
            TileGrid::paper_default(),
            PtileConfig::paper_default(),
        );
        let grid = *server.grid();
        let timeline = SegmentTimeline::for_video(spec);
        let areas: Vec<Vec<f64>> = (0..timeline.len())
            .map(|k| {
                server
                    .ptiles(k)
                    .iter()
                    .map(|p| p.area_fraction(&grid))
                    .collect()
            })
            .collect();
        let manifest = VideoManifest::build(&timeline, &model, &ladder, &areas);

        let conventional: f64 = manifest_bits(&manifest, |k| {
            matches!(
                k,
                RepresentationKind::ConventionalTile { .. } | RepresentationKind::WholeFrame
            )
        });
        let total = manifest.total_stored_bits();
        let gb = |bits: f64| bits / 8.0 / 1e9;
        table.row(vec![
            format!("{}", spec.id),
            spec.name.clone(),
            format!("{:.2}", gb(conventional)),
            format!("{:.2}", gb(total)),
            format!("{:+.0}%", (total / conventional - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("the Ptile ladder costs server storage — the energy saving is paid for off-device");
}

fn manifest_bits(manifest: &VideoManifest, keep: impl Fn(&RepresentationKind) -> bool) -> f64 {
    (0..manifest.len())
        .filter_map(|i| manifest.segment(i))
        .flat_map(|s| s.representations.iter())
        .filter(|r| keep(&r.kind))
        .map(|r| r.bits)
        .sum()
}
