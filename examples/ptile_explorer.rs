//! Visualise Ptile construction on the equirectangular tile grid — an
//! ASCII rendition of the paper's Figs. 1 and 6.
//!
//! ```sh
//! cargo run --release --example ptile_explorer [video-id] [segment]
//! ```
//!
//! Dots mark training users' viewing centers; letters mark which Ptile
//! covers each tile (`A` = most popular); `.` marks background tiles.

use ee360::cluster::ptile::{background_blocks, build_ptiles, PtileConfig};
use ee360::geom::grid::{TileGrid, TileId};
use ee360::geom::viewport::ViewCenter;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::head::GazeConfig;
use ee360::video::catalog::VideoCatalog;

fn main() {
    let video_id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let segment: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);

    let catalog = VideoCatalog::paper_default();
    let spec = catalog
        .video(video_id)
        .unwrap_or_else(|| panic!("video {video_id} not in the catalog (1..=8)"));
    assert!(
        segment < spec.segment_count(),
        "segment {segment} out of range (video has {})",
        spec.segment_count()
    );
    println!(
        "video {} ({}), segment {} — 40 training users",
        spec.id, spec.name, segment
    );

    let traces = VideoTraces::generate(spec, 48, 42, GazeConfig::default());
    let (train, _) = traces.split(40, 42);
    let centers: Vec<ViewCenter> = train
        .iter()
        .filter_map(|t| t.segment_center(segment))
        .collect();

    let grid = TileGrid::paper_default();
    let config = PtileConfig::paper_default();
    let ptiles = build_ptiles(&centers, &grid, &config);

    // Render the 4×8 grid; mark Ptile membership and user counts per tile.
    let mut user_count = vec![0usize; grid.tile_count()];
    for c in &centers {
        user_count[grid.flat_index(grid.tile_at(c))] += 1;
    }
    println!("\ntile grid (rows = pitch bands top→bottom, cols = yaw −180°→180°):");
    println!("  each cell: Ptile letter (or '.') + number of viewing centers in the tile\n");
    for row in 0..grid.rows() {
        let mut line = String::new();
        for col in 0..grid.cols() {
            let tile = TileId::new(row, col);
            let mark = ptiles
                .iter()
                .position(|p| p.region.contains(tile))
                .map(|i| (b'A' + i as u8) as char)
                .unwrap_or('.');
            let users = user_count[grid.flat_index(tile)];
            line.push_str(&format!("[{mark}{users:>2}]"));
        }
        println!("  {line}");
    }

    println!("\nconstructed Ptiles:");
    for (i, p) in ptiles.iter().enumerate() {
        println!(
            "  {} — {} users, {} tiles ({}×{}), {:.0}% of the frame",
            (b'A' + i as u8) as char,
            p.user_count(),
            p.region.tile_count(),
            p.region.row_span(),
            p.region.col_span(),
            p.area_fraction(&grid) * 100.0,
        );
        let blocks = background_blocks(&p.region, &grid);
        println!(
            "      background shipped as {} low-quality block(s): {:?} tiles each",
            blocks.len(),
            blocks.iter().map(|b| b.tile_count()).collect::<Vec<_>>()
        );
    }
    if ptiles.is_empty() {
        println!(
            "  (none — no cluster reached the {}-user popularity threshold)",
            config.min_users
        );
    }
}
