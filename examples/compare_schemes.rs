//! Compare all five streaming schemes on one video under both network
//! conditions — a miniature of the paper's Figs. 9 and 11.
//!
//! ```sh
//! cargo run --release --example compare_schemes [video-id]
//! ```

use ee360::abr::controller::Scheme;
use ee360::core::experiment::{Evaluation, ExperimentConfig};
use ee360::core::report::TableWriter;
use ee360::video::catalog::VideoCatalog;

fn main() {
    let video_id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let catalog = VideoCatalog::paper_default();
    let spec = catalog
        .video(video_id)
        .unwrap_or_else(|| panic!("video {video_id} is not in the Table III catalog (1..=8)"));
    println!("video {}: {} ({:?})", spec.id, spec.name, spec.behavior);

    for (label, config) in [
        ("trace 1 (≈7.8 Mbps)", ExperimentConfig::paper_trace1()),
        ("trace 2 (≈3.9 Mbps)", ExperimentConfig::paper_trace2()),
    ] {
        let eval = Evaluation::prepare_videos(config, &catalog, Some(&[video_id]));
        println!("\n{label}:");
        let mut table = TableWriter::new(vec![
            "scheme",
            "energy [mJ/seg]",
            "vs Ctile",
            "QoE",
            "quality lvl",
            "fps",
            "stall [s]",
        ]);
        let outcomes: Vec<_> = Scheme::ALL.iter().map(|s| eval.run(video_id, *s)).collect();
        let ctile_energy = outcomes[0].mean_energy_mj_per_segment;
        for o in &outcomes {
            table.row(vec![
                o.scheme.label().into(),
                format!("{:.1}", o.mean_energy_mj_per_segment),
                format!(
                    "{:+.1}%",
                    (o.mean_energy_mj_per_segment / ctile_energy - 1.0) * 100.0
                ),
                format!("{:.1}", o.mean_qoe),
                format!("{:.2}", o.mean_quality_level),
                format!("{:.1}", o.mean_fps),
                format!("{:.2}", o.mean_stall_sec),
            ]);
        }
        println!("{}", table.render());
    }
    println!("expected shape: Ours < Ptile < Ftile/Nontile < Ctile in energy,");
    println!("Ours ≈ Ptile > Ftile > Ctile in QoE (Figs. 9 & 11 of the paper)");
}
