//! The dual problem: maximise QoE under an energy budget — a
//! "battery-saver slider" built from the same MPC machinery.
//!
//! ```sh
//! cargo run --release --example battery_saver
//! ```
//!
//! Sweeps the per-segment energy budget and prints the QoE/energy frontier
//! next to the paper's Eq. 8 controller.

use ee360::abr::controller::Scheme;
use ee360::abr::dual::EnergyBudgetController;
use ee360::cluster::ptile::PtileConfig;
use ee360::core::client::{run_session, run_session_with, SessionSetup};
use ee360::core::report::TableWriter;
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::power::model::Phone;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::head::GazeConfig;
use ee360::trace::network::NetworkTrace;
use ee360::video::catalog::VideoCatalog;

fn main() {
    let catalog = VideoCatalog::paper_default();
    let spec = catalog.video(4).expect("video 4 exists");
    let traces = VideoTraces::generate(spec, 48, 23, GazeConfig::default());
    let (train, eval) = traces.split(40, 23);
    let server = VideoServer::prepare(
        spec,
        &train,
        TileGrid::paper_default(),
        PtileConfig::paper_default(),
    );
    let network = NetworkTrace::paper_trace1(400, 23);
    let setup = SessionSetup {
        server: &server,
        user: eval[0],
        network: &network,
        phone: Phone::Pixel3,
        max_segments: Some(150),
    };

    println!(
        "video {} ({}), trace 1, Pixel 3 — QoE under an energy budget\n",
        spec.id, spec.name
    );
    let mut table = TableWriter::new(vec![
        "controller",
        "budget [mJ/seg]",
        "energy [mJ/seg]",
        "QoE",
        "quality lvl",
    ]);

    for budget in [700.0, 900.0, 1200.0, 1600.0, 2400.0] {
        let mut controller = EnergyBudgetController::new(budget);
        let m = run_session_with(&mut controller, &setup);
        table.row(vec![
            "budget (dual)".into(),
            format!("{budget:.0}"),
            format!("{:.1}", m.total_energy_mj() / m.len() as f64),
            format!("{:.1}", m.mean_qoe()),
            format!("{:.2}", m.mean_quality_level()),
        ]);
    }

    // The paper's Eq. 8 controller for reference.
    let m = run_session(Scheme::Ours, &setup);
    table.row(vec![
        "Ours (Eq. 8)".into(),
        "-".into(),
        format!("{:.1}", m.total_energy_mj() / m.len() as f64),
        format!("{:.1}", m.mean_qoe()),
        format!("{:.2}", m.mean_quality_level()),
    ]);
    let p = run_session(Scheme::Ptile, &setup);
    table.row(vec![
        "Ptile (max quality)".into(),
        "-".into(),
        format!("{:.1}", p.total_energy_mj() / p.len() as f64),
        format!("{:.1}", p.mean_qoe()),
        format!("{:.2}", p.mean_quality_level()),
    ]);
    println!("{}", table.render());
    println!("tighter budgets trade quality levels for battery life along the same frontier");
}
