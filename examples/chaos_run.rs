//! Seeded chaos scenario: a mid-stream radio blackout plus a fault storm.
//!
//! ```sh
//! cargo run --release --example chaos_run [Nexus5X|Pixel3|GalaxyS20] \
//!     [--storm] [--obs] [--scheme ours|robust-mpc]
//! ```
//!
//! Streams the paper's `Ours` scheme (or, with `--scheme robust-mpc`,
//! the beyond-paper uncertainty-aware controller) over LTE trace 2 with
//! a 10 s zero-bandwidth outage injected at t = 30 s (plus, with
//! `--storm`, a seeded storm of outages, latency spikes, losses and
//! corruptions), and verifies the resilience contract:
//!
//! 1. the session completes without panicking or hanging,
//! 2. the outage leaves a trace in the resilience counters (an abandon,
//!    downgrade or skip),
//! 3. the rebuffer ratio stays bounded despite the blackout,
//! 4. two same-seed runs serialize to byte-identical metrics JSON.
//!
//! Exits non-zero if any of those fail — `scripts/ci.sh` runs this once
//! per phone profile as its fault-injection smoke stage.
//!
//! With `--obs` the same scenario additionally runs with a live
//! [`ee360::obs::Recorder`] at `Detail` level and verifies the
//! observability contract: the recorder is write-only (traced metrics are
//! byte-identical to untraced), the registry reconciles *exactly* with
//! the end-of-run resilience counters and session aggregates, two
//! same-seed traces serialize byte-identically, and the exported
//! `results/obs_report.json` re-parses with every required key present.
//! `scripts/ci.sh` runs this as its observability smoke stage.
//!
//! `--scheme robust-mpc` switches to [`Scheme::RobustMpc`] and streams
//! the wandering-gaze fixture (video 5) instead, so the robust widening
//! actually engages; with `--obs` the exported report then carries the
//! `robust.*` uncertainty counters — `scripts/ci.sh` greps those as its
//! robust-control smoke stage.

use ee360::abr::controller::Scheme;
use ee360::cluster::ptile::PtileConfig;
use ee360::core::client::{run_session_resilient_traced, SessionSetup};
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::power::model::Phone;
use ee360::sim::metrics::SessionMetrics;
use ee360::sim::resilience::RetryPolicy;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::fault::{FaultConfig, FaultPlan};
use ee360::trace::head::{GazeConfig, HeadTrace};
use ee360::trace::network::NetworkTrace;
use ee360::video::catalog::VideoCatalog;
use ee360_support::json::to_string;

const SEGMENTS: usize = 60;
const SEED: u64 = 5;
/// Head-trace seed for the robust fixture — the wandering-gaze regime
/// where the residual tracker's width clears [`MIN_GROW_DEG`] (same
/// fixture as `tests/robustness.rs`).
///
/// [`MIN_GROW_DEG`]: ee360::abr::robust::MIN_GROW_DEG
const ROBUST_TRACE_SEED: u64 = 41;

fn parse_phone(arg: &str) -> Option<Phone> {
    match arg {
        "Nexus5X" => Some(Phone::Nexus5X),
        "Pixel3" => Some(Phone::Pixel3),
        "GalaxyS20" => Some(Phone::GalaxyS20),
        _ => None,
    }
}

fn chaos_metrics(scheme: Scheme, phone: Phone, faults: &FaultPlan) -> SessionMetrics {
    chaos_metrics_traced(scheme, phone, faults, &mut ee360::obs::NoopRecorder)
}

fn chaos_metrics_traced(
    scheme: Scheme,
    phone: Phone,
    faults: &FaultPlan,
    rec: &mut dyn ee360::obs::Record,
) -> SessionMetrics {
    let catalog = VideoCatalog::paper_default();
    // The robust scheme streams the wandering-gaze fixture: prediction
    // misses escape the point slack often enough for the widening to
    // engage, while Ptiles keep covering the predicted viewport.
    // (Fixture matches tests/robustness.rs::exploratory_fixture.)
    let (video, users, trace_seed, gaze) = if scheme == Scheme::RobustMpc {
        (
            5,
            12,
            ROBUST_TRACE_SEED,
            GazeConfig {
                roam_probability: 0.15,
                exploratory_offset_deg: 14.0,
                flick_rate_hz: 1.8,
                ..GazeConfig::default()
            },
        )
    } else {
        (2, 10, SEED, GazeConfig::default())
    };
    let spec = catalog.video(video).expect("catalog has the video");
    let traces = VideoTraces::generate(spec, users, trace_seed, gaze);
    let refs: Vec<&HeadTrace> = traces.traces().iter().collect();
    let refs = &refs[..users - 2];
    let server = VideoServer::prepare(
        spec,
        refs,
        TileGrid::paper_default(),
        PtileConfig::paper_default(),
    );
    let network = NetworkTrace::paper_trace2(400, SEED);
    let user = traces.traces().last().expect("generated users");
    let setup = SessionSetup {
        server: &server,
        user,
        network: &network,
        phone,
        max_segments: Some(SEGMENTS),
    };
    run_session_resilient_traced(scheme, &setup, faults, &RetryPolicy::default_mobile(), rec)
}

/// Runs the observability smoke: live recording, exact reconciliation
/// against the session aggregates, byte-identical same-seed traces, and
/// an exported report that re-parses with all required keys. Appends any
/// violations to `failures`.
fn obs_smoke(
    scheme: Scheme,
    phone: Phone,
    faults: &FaultPlan,
    untraced_json: &str,
    failures: &mut Vec<String>,
) {
    use ee360::obs::{export, profile, Level, Recorder};

    // Wall-clock stage timers are opt-in (`EE360_OBS_PROFILE=1`); they
    // feed `profile.*` histograms in the report but never the event
    // trace, so the byte-identical replay check below survives them.
    let profiling = profile::profiling_from_env();
    // Logical-time windows: 5 s buckets over the session clock. Windowed
    // counters partition the whole-run registry exactly, which the
    // reconciliation below checks per key.
    let window_sec = 5.0;
    let mut rec = Recorder::new(Level::Detail)
        .with_profiling(profiling)
        .with_windows(window_sec);
    let metrics = chaos_metrics_traced(scheme, phone, faults, &mut rec);
    let traced_json = to_string(&metrics).expect("metrics serialize");
    if traced_json != untraced_json {
        failures.push("recorder is not write-only: traced metrics diverged from untraced".into());
    }

    // Exact reconciliation: every obs counter/histogram mirrors a
    // ResilienceCounters bump at the same statement with the same value,
    // and sums accumulate in the same order — so `==`, not "approx".
    let r = *metrics.resilience();
    let reg = rec.registry();
    let counter_pairs: [(&str, u64); 10] = [
        ("resilience.attempts", r.attempts as u64),
        ("resilience.retries", r.retries as u64),
        ("resilience.timeouts", r.timeouts as u64),
        ("resilience.losses", r.losses as u64),
        ("resilience.corruptions", r.corruptions as u64),
        ("resilience.abandons", r.abandons as u64),
        ("resilience.decoder_failures", r.decoder_failures as u64),
        ("resilience.skipped_segments", r.skipped_segments as u64),
        ("resilience.degraded_segments", r.degraded_segments as u64),
        ("resilience.degraded_rungs", r.degraded_rungs as u64),
    ];
    for (name, expected) in counter_pairs {
        let got = reg.counter(name);
        if got != expected {
            failures.push(format!("obs counter {name}={got} != counters {expected}"));
        }
    }
    let hist_pairs: [(&str, f64); 6] = [
        ("resilience.backoff_sec", r.backoff_sec),
        ("resilience.blackout_sec", r.blackout_sec),
        ("resilience.recovery_sec", r.recovery_sec),
        ("resilience.wasted_bits", r.wasted_bits),
        ("session.stall_sec", metrics.total_stall_sec()),
        (
            "energy.transmission_mj",
            metrics.energy_breakdown_mj().transmission_mj,
        ),
    ];
    for (name, expected) in hist_pairs {
        let got = reg.hist_sum(name);
        if got.to_bits() != expected.to_bits() {
            failures.push(format!(
                "obs histogram {name} sum {got} != aggregate {expected} (bit-exact)"
            ));
        }
    }
    let energy_obs = reg.hist_sum("energy.transmission_mj")
        + reg.hist_sum("energy.decode_mj")
        + reg.hist_sum("energy.render_mj");
    if (energy_obs - metrics.total_energy_mj()).abs() > 1e-9 {
        failures.push(format!(
            "obs energy total {energy_obs} != session {}",
            metrics.total_energy_mj()
        ));
    }

    // Windowed telemetry: the per-window registries partition the
    // whole-run registry — counter sums must match integer-exactly and
    // histogram counts must match per key.
    match rec.windows() {
        None => failures.push("windowed recorder lost its timeseries".into()),
        Some(windows) => {
            if windows.is_empty() {
                failures.push("session booked nothing into any logical-time window".into());
            }
            for (name, expected) in counter_pairs {
                let got = windows.counter_total(name);
                if got != expected {
                    failures.push(format!(
                        "windowed counter {name} sums to {got} != whole-run {expected}"
                    ));
                }
            }
            for (name, _) in hist_pairs {
                let got = windows.hist_count_total(name);
                let expected = reg.histogram(name).map_or(0, ee360::obs::Histogram::count);
                if got != expected {
                    failures.push(format!(
                        "windowed histogram {name} count {got} != whole-run {expected}"
                    ));
                }
            }
        }
    }

    // The robust scheme's uncertainty accounting must surface in the
    // registry: the wandering-gaze fixture is tuned so the widening
    // engages, and the exported report is what the CI robust smoke greps.
    if scheme == Scheme::RobustMpc {
        if reg.counter("robust.widened_plans") == 0 {
            failures.push("robust run never widened a plan".into());
        }
        println!("\nrobust counters:");
        println!(
            "  margin applied     {}",
            reg.counter("robust.margin_applied")
        );
        println!(
            "  widened plans      {}",
            reg.counter("robust.widened_plans")
        );
        println!(
            "  coverage saved     {}",
            reg.counter("robust.coverage_miss_saved")
        );
        println!(
            "  width sum          {:.1} deg",
            reg.hist_sum("robust.quantile_width_deg")
        );
    }

    // Same-seed trace replay: byte-identical JSONL (profiling off).
    let mut rec2 = Recorder::new(Level::Detail)
        .with_profiling(profiling)
        .with_windows(window_sec);
    let _ = chaos_metrics_traced(scheme, phone, faults, &mut rec2);
    let trace_a = rec.trace_jsonl().expect("trace serializes");
    let trace_b = rec2.trace_jsonl().expect("trace serializes");
    if trace_a != trace_b {
        failures.push("same-seed obs traces are not byte-identical".into());
    }

    // Export, then re-parse the artifacts the way a dashboard would.
    export::write_report("results/obs_report.json", &rec).expect("write obs report");
    export::write_trace("results/obs_trace.jsonl", &rec).expect("write obs trace");
    let report_text = std::fs::read_to_string("results/obs_report.json").expect("report readable");
    match ee360_support::json::parse(&report_text) {
        Ok(report) => {
            for key in [
                "schema",
                "level",
                "events_recorded",
                "events_dropped",
                "spans",
                "metrics",
                "timeseries",
            ] {
                if report.get(key).is_none() {
                    failures.push(format!("obs report is missing required key {key:?}"));
                }
            }
            if report
                .get("schema")
                .and_then(ee360_support::json::Json::as_str)
                != Some(export::REPORT_SCHEMA)
            {
                failures.push("obs report schema tag mismatch".into());
            }
        }
        Err(e) => failures.push(format!("obs report does not re-parse: {e}")),
    }

    println!("\nobservability:");
    println!(
        "  profiling          {}",
        if profiling { "on" } else { "off" }
    );
    println!("  events recorded    {}", rec.events_len());
    println!("  events dropped     {}", rec.dropped());
    println!(
        "  trace bytes        {} (byte-identical replay)",
        trace_a.len()
    );
    println!("  report             results/obs_report.json");
    println!("  trace              results/obs_trace.jsonl");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let phone = args
        .iter()
        .find_map(|a| parse_phone(a))
        .unwrap_or(Phone::Pixel3);
    let storm = args.iter().any(|a| a == "--storm");
    let obs = args.iter().any(|a| a == "--obs");
    let scheme = match args
        .iter()
        .position(|a| a == "--scheme")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None => Scheme::Ours,
        Some(token) => match Scheme::from_cli_token(token) {
            Some(s @ (Scheme::Ours | Scheme::RobustMpc)) => s,
            _ => {
                eprintln!("unknown --scheme {token:?}; expected ours or robust-mpc");
                std::process::exit(2);
            }
        },
    };

    // The headline scenario: a 10 s dead radio starting at t = 30.
    let mut faults = FaultPlan::single_outage(30.0, 10.0);
    if storm {
        // Layer a seeded storm on top: scheduled outages/spikes plus
        // per-attempt loss, corruption and decoder failures.
        faults =
            FaultPlan::generate(FaultConfig::chaos_default(), 400.0, SEED).and_outage(30.0, 10.0);
    }

    println!(
        "chaos run: scheme={} phone={phone:?} storm={storm} obs={obs} \
         segments={SEGMENTS} seed={SEED}",
        scheme.label()
    );
    println!(
        "fault plan: {} scheduled event(s), {:.1} s total outage",
        faults.events().len(),
        faults.total_outage_sec()
    );

    let metrics = chaos_metrics(scheme, phone, &faults);
    let replay = chaos_metrics(scheme, phone, &faults);

    let mut failures = Vec::new();

    if metrics.len() != SEGMENTS {
        failures.push(format!(
            "expected {SEGMENTS} segment slots, got {}",
            metrics.len()
        ));
    }

    let r = *metrics.resilience();
    if r.abandons + r.degraded_segments + r.skipped_segments == 0 {
        failures.push("the outage left no abandon/downgrade/skip in the counters".into());
    }

    let ratio = metrics.rebuffer_ratio();
    if !(ratio.is_finite() && ratio < 0.5) {
        failures.push(format!("rebuffer ratio {ratio:.3} not bounded below 0.5"));
    }

    let json_a = to_string(&metrics).expect("metrics serialize");
    let json_b = to_string(&replay).expect("metrics serialize");
    if json_a != json_b {
        failures.push("same-seed replays diverged: metrics JSON not byte-identical".into());
    }

    if obs {
        obs_smoke(scheme, phone, &faults, &json_a, &mut failures);
    }

    println!("\nresilience counters:");
    println!("  attempts           {}", r.attempts);
    println!("  retries            {}", r.retries);
    println!("  timeouts           {}", r.timeouts);
    println!("  abandons           {}", r.abandons);
    println!("  losses             {}", r.losses);
    println!("  corruptions        {}", r.corruptions);
    println!("  decoder failures   {}", r.decoder_failures);
    println!(
        "  degraded segments  {} ({} rung(s))",
        r.degraded_segments, r.degraded_rungs
    );
    println!("  skipped segments   {}", r.skipped_segments);
    println!("  backoff            {:.2} s", r.backoff_sec);
    println!("  blackout           {:.2} s", r.blackout_sec);
    println!("  recovery           {:.2} s", r.recovery_sec);
    println!("  wasted bits        {:.2} Mb", r.wasted_bits / 1e6);
    println!("\nsession:");
    println!("  mean QoE           {:.2}", metrics.mean_qoe());
    println!("  mean quality       {:.2}", metrics.mean_quality());
    println!("  rebuffer ratio     {:.3}", ratio);
    println!("  total energy       {:.0} mJ", metrics.total_energy_mj());
    println!(
        "  replay JSON        {} bytes, byte-identical",
        json_a.len()
    );

    if failures.is_empty() {
        println!("\nchaos contract held: degraded gracefully, replayed identically.");
    } else {
        eprintln!("\nchaos contract VIOLATED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
