//! Seeded chaos scenario: a mid-stream radio blackout plus a fault storm.
//!
//! ```sh
//! cargo run --release --example chaos_run [Nexus5X|Pixel3|GalaxyS20] [--storm]
//! ```
//!
//! Streams the paper's `Ours` scheme over LTE trace 2 with a 10 s
//! zero-bandwidth outage injected at t = 30 s (plus, with `--storm`, a
//! seeded storm of outages, latency spikes, losses and corruptions), and
//! verifies the resilience contract:
//!
//! 1. the session completes without panicking or hanging,
//! 2. the outage leaves a trace in the resilience counters (an abandon,
//!    downgrade or skip),
//! 3. the rebuffer ratio stays bounded despite the blackout,
//! 4. two same-seed runs serialize to byte-identical metrics JSON.
//!
//! Exits non-zero if any of those fail — `scripts/ci.sh` runs this once
//! per phone profile as its fault-injection smoke stage.

use ee360::abr::controller::Scheme;
use ee360::cluster::ptile::PtileConfig;
use ee360::core::client::{run_session_resilient, SessionSetup};
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::power::model::Phone;
use ee360::sim::metrics::SessionMetrics;
use ee360::sim::resilience::RetryPolicy;
use ee360::trace::dataset::VideoTraces;
use ee360::trace::fault::{FaultConfig, FaultPlan};
use ee360::trace::head::{GazeConfig, HeadTrace};
use ee360::trace::network::NetworkTrace;
use ee360::video::catalog::VideoCatalog;
use ee360_support::json::to_string;

const SEGMENTS: usize = 60;
const SEED: u64 = 5;

fn parse_phone(arg: &str) -> Option<Phone> {
    match arg {
        "Nexus5X" => Some(Phone::Nexus5X),
        "Pixel3" => Some(Phone::Pixel3),
        "GalaxyS20" => Some(Phone::GalaxyS20),
        _ => None,
    }
}

fn chaos_metrics(phone: Phone, faults: &FaultPlan) -> SessionMetrics {
    let catalog = VideoCatalog::paper_default();
    let spec = catalog.video(2).expect("catalog has video 2");
    let traces = VideoTraces::generate(spec, 10, SEED, GazeConfig::default());
    let refs: Vec<&HeadTrace> = traces.traces().iter().collect();
    let server = VideoServer::prepare(
        spec,
        &refs[..8],
        TileGrid::paper_default(),
        PtileConfig::paper_default(),
    );
    let network = NetworkTrace::paper_trace2(400, SEED);
    let user = traces.traces().last().expect("generated users");
    let setup = SessionSetup {
        server: &server,
        user,
        network: &network,
        phone,
        max_segments: Some(SEGMENTS),
    };
    run_session_resilient(Scheme::Ours, &setup, faults, &RetryPolicy::default_mobile())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let phone = args
        .iter()
        .find_map(|a| parse_phone(a))
        .unwrap_or(Phone::Pixel3);
    let storm = args.iter().any(|a| a == "--storm");

    // The headline scenario: a 10 s dead radio starting at t = 30.
    let mut faults = FaultPlan::single_outage(30.0, 10.0);
    if storm {
        // Layer a seeded storm on top: scheduled outages/spikes plus
        // per-attempt loss, corruption and decoder failures.
        faults =
            FaultPlan::generate(FaultConfig::chaos_default(), 400.0, SEED).and_outage(30.0, 10.0);
    }

    println!("chaos run: phone={phone:?} storm={storm} segments={SEGMENTS} seed={SEED}",);
    println!(
        "fault plan: {} scheduled event(s), {:.1} s total outage",
        faults.events().len(),
        faults.total_outage_sec()
    );

    let metrics = chaos_metrics(phone, &faults);
    let replay = chaos_metrics(phone, &faults);

    let mut failures = Vec::new();

    if metrics.len() != SEGMENTS {
        failures.push(format!(
            "expected {SEGMENTS} segment slots, got {}",
            metrics.len()
        ));
    }

    let r = *metrics.resilience();
    if r.abandons + r.degraded_segments + r.skipped_segments == 0 {
        failures.push("the outage left no abandon/downgrade/skip in the counters".into());
    }

    let ratio = metrics.rebuffer_ratio();
    if !(ratio.is_finite() && ratio < 0.5) {
        failures.push(format!("rebuffer ratio {ratio:.3} not bounded below 0.5"));
    }

    let json_a = to_string(&metrics).expect("metrics serialize");
    let json_b = to_string(&replay).expect("metrics serialize");
    if json_a != json_b {
        failures.push("same-seed replays diverged: metrics JSON not byte-identical".into());
    }

    println!("\nresilience counters:");
    println!("  attempts           {}", r.attempts);
    println!("  retries            {}", r.retries);
    println!("  timeouts           {}", r.timeouts);
    println!("  abandons           {}", r.abandons);
    println!("  losses             {}", r.losses);
    println!("  corruptions        {}", r.corruptions);
    println!("  decoder failures   {}", r.decoder_failures);
    println!(
        "  degraded segments  {} ({} rung(s))",
        r.degraded_segments, r.degraded_rungs
    );
    println!("  skipped segments   {}", r.skipped_segments);
    println!("  backoff            {:.2} s", r.backoff_sec);
    println!("  blackout           {:.2} s", r.blackout_sec);
    println!("  recovery           {:.2} s", r.recovery_sec);
    println!("  wasted bits        {:.2} Mb", r.wasted_bits / 1e6);
    println!("\nsession:");
    println!("  mean QoE           {:.2}", metrics.mean_qoe());
    println!("  mean quality       {:.2}", metrics.mean_quality());
    println!("  rebuffer ratio     {:.3}", ratio);
    println!("  total energy       {:.0} mJ", metrics.total_energy_mj());
    println!(
        "  replay JSON        {} bytes, byte-identical",
        json_a.len()
    );

    if failures.is_empty() {
        println!("\nchaos contract held: degraded gracefully, replayed identically.");
    } else {
        eprintln!("\nchaos contract VIOLATED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
