//! Watch the MPC controller make per-segment decisions — a narrated
//! streaming session.
//!
//! ```sh
//! cargo run --release --example live_session
//! ```
//!
//! Prints one line per segment: buffer state, bandwidth estimate, the
//! chosen (quality, frame-rate) tuple, whether a Ptile covered the
//! predicted viewport, and the resulting energy/QoE.

use ee360::abr::controller::Scheme;
use ee360::cluster::ptile::PtileConfig;
use ee360::core::client::{run_session, SessionSetup};
use ee360::core::server::VideoServer;
use ee360::geom::grid::TileGrid;
use ee360::power::model::{DecoderScheme, Phone};
use ee360::trace::dataset::VideoTraces;
use ee360::trace::head::GazeConfig;
use ee360::trace::network::NetworkTrace;
use ee360::video::catalog::VideoCatalog;

fn main() {
    let catalog = VideoCatalog::paper_default();
    let spec = catalog.video(3).expect("video 3 exists");
    let traces = VideoTraces::generate(spec, 48, 11, GazeConfig::default());
    let (train, eval) = traces.split(40, 11);
    let server = VideoServer::prepare(
        spec,
        &train,
        TileGrid::paper_default(),
        PtileConfig::paper_default(),
    );
    let network = NetworkTrace::paper_trace2(400, 11);
    let metrics = run_session(
        Scheme::Ours,
        &SessionSetup {
            server: &server,
            user: eval[0],
            network: &network,
            phone: Phone::Pixel3,
            max_segments: Some(40),
        },
    );

    println!(
        "video {} ({}), user {}, Ours on Pixel 3 over trace 2\n",
        spec.id,
        spec.name,
        eval[0].user_id()
    );
    println!(
        "{:>3}  {:>6} {:>5} {:>9} {:>7} {:>7} {:>7} {:>8} {:>6}",
        "seg", "buffer", "q", "fps", "Ptile?", "dl [s]", "stall", "E [mJ]", "QoE"
    );
    for r in metrics.records() {
        println!(
            "{:>3}  {:>5.1}s {:>5} {:>8.0}fps {:>7} {:>7.2} {:>7.2} {:>8.0} {:>6.1}",
            r.index,
            r.timing.buffer_at_request_sec,
            r.quality_level,
            r.fps,
            if r.decode_scheme == DecoderScheme::Ptile {
                "yes"
            } else {
                "no"
            },
            r.timing.download_sec,
            r.timing.stall_sec,
            r.energy.total_mj(),
            r.qoe.total,
        );
    }
    println!(
        "\ntotals: {:.1} J, mean QoE {:.1}, {} stalls",
        metrics.total_energy_mj() / 1000.0,
        metrics.mean_qoe(),
        metrics.stall_count()
    );
}
