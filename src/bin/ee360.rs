//! `ee360` — command-line front end for the reproduction.
//!
//! ```text
//! ee360 dataset  --out traces.json [--users 48] [--seed 42]
//! ee360 compare  [--video 4] [--trace1] [--segments N] [--phone pixel3]
//! ee360 coverage [--users 48] [--seed 20220706]
//! ee360 sweep    [--trace1] [--threads N]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use ee360::abr::controller::Scheme;
use ee360::core::experiment::{Evaluation, ExperimentConfig};
use ee360::core::parallel::{default_threads, run_matrix};
use ee360::core::report::TableWriter;
use ee360::power::model::Phone;
use ee360::trace::dataset::Dataset;
use ee360::trace::io::save_dataset;
use ee360::video::catalog::VideoCatalog;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "dataset" => cmd_dataset(&flags),
        "compare" => cmd_compare(&flags),
        "coverage" => cmd_coverage(&flags),
        "sweep" => cmd_sweep(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ee360 dataset  --out FILE [--users N] [--seed S]   generate & save a head-trace dataset
  ee360 compare  [--video N] [--trace1] [--segments N] [--phone pixel3|nexus5x|galaxys20]
  ee360 coverage [--users N] [--seed S]               Fig. 7 Ptile coverage statistics
  ee360 sweep    [--trace1] [--threads N]             full 8-video × 5-scheme matrix";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = if it.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                it.next().cloned().unwrap_or_default()
            } else {
                "true".to_string()
            };
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{name} got invalid value `{v}`")),
    }
}

fn config_from(flags: &HashMap<String, String>) -> Result<ExperimentConfig, String> {
    let mut config = if flags.contains_key("trace1") {
        ExperimentConfig::paper_trace1()
    } else {
        ExperimentConfig::paper_trace2()
    };
    config.seed = get(flags, "seed", config.seed)?;
    if let Some(n) = flags.get("segments") {
        config.max_segments = Some(
            n.parse()
                .map_err(|_| format!("--segments got invalid value `{n}`"))?,
        );
    }
    config.phone = match flags.get("phone").map(String::as_str) {
        None | Some("pixel3") => Phone::Pixel3,
        Some("nexus5x") => Phone::Nexus5X,
        Some("galaxys20") => Phone::GalaxyS20,
        Some(other) => return Err(format!("unknown phone `{other}`")),
    };
    Ok(config)
}

fn cmd_dataset(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags
        .get("out")
        .ok_or("dataset requires --out FILE".to_string())?;
    let users: usize = get(flags, "users", 48)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let catalog = VideoCatalog::paper_default();
    println!(
        "generating {users} users × {} videos (seed {seed})…",
        catalog.videos().len()
    );
    let dataset = Dataset::generate(&catalog, users, seed);
    save_dataset(&dataset, out).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let video: usize = get(flags, "video", 4)?;
    if !(1..=8).contains(&video) {
        return Err(format!(
            "video {video} is not in the Table III catalog (1..=8)"
        ));
    }
    let config = config_from(flags)?;
    let catalog = VideoCatalog::paper_default();
    let eval = Evaluation::prepare_videos(config, &catalog, Some(&[video]));
    let spec = catalog.video(video).expect("validated above");
    println!(
        "video {}: {} ({:?}), phone {:?}",
        spec.id, spec.name, spec.behavior, config.phone
    );
    let mut table = TableWriter::new(vec!["scheme", "energy [mJ/seg]", "QoE", "stall [s]"]);
    for scheme in Scheme::ALL {
        let o = eval.run(video, scheme);
        table.row(vec![
            scheme.label().into(),
            format!("{:.1}", o.mean_energy_mj_per_segment),
            format!("{:.1}", o.mean_qoe),
            format!("{:.2}", o.mean_stall_sec),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_coverage(flags: &HashMap<String, String>) -> Result<(), String> {
    let config = config_from(flags)?;
    let eval = Evaluation::prepare(config);
    let mut table = TableWriter::new(vec!["video", "mean Ptiles", "coverage"]);
    for v in 1..=8 {
        let server = eval.server(v).expect("all videos prepared");
        let users: Vec<_> = eval.eval_users(v).iter().collect();
        let stats = server.coverage_stats(&users);
        table.row(vec![
            format!("{v}"),
            format!("{:.2}", stats.mean_ptile_count()),
            format!("{:.1}%", stats.mean_coverage() * 100.0),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let config = config_from(flags)?;
    let threads: usize = get(flags, "threads", default_threads())?;
    let eval = Evaluation::prepare(config);
    let videos: Vec<usize> = (1..=8).collect();
    let outs = run_matrix(&eval, &videos, &Scheme::ALL, threads);
    let mut table = TableWriter::new(vec!["video", "scheme", "energy [mJ/seg]", "QoE"]);
    for o in &outs {
        table.row(vec![
            format!("{}", o.video_id),
            o.scheme.label().into(),
            format!("{:.1}", o.mean_energy_mj_per_segment),
            format!("{:.1}", o.mean_qoe),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
