//! Umbrella crate for the `ee360` workspace: a from-scratch Rust
//! reproduction of *"Energy-Efficient and QoE-Aware 360-Degree Video
//! Streaming on Mobile Devices"* (Chen & Cao, ICDCS 2022).
//!
//! This crate re-exports every subsystem so that examples and downstream
//! users can depend on a single crate:
//!
//! ```
//! use ee360::geom::viewport::{ViewCenter, Viewport};
//! let vp = Viewport::paper_fov(ViewCenter::new(0.0, 0.0));
//! assert!(vp.contains(&ViewCenter::new(10.0, 10.0)));
//! ```
//!
//! See the individual crates for details:
//!
//! * [`geom`] — spherical/equirectangular geometry,
//! * [`numeric`] — small dense linear algebra, ridge regression,
//!   Levenberg–Marquardt, statistics,
//! * [`obs`] — deterministic structured tracing, metrics registry, and
//!   opt-in per-stage profiling,
//! * [`trace`] — synthetic head-movement and LTE network traces,
//! * [`video`] — segments, encoding ladder, SI/TI content model, tile and
//!   Ptile size model,
//! * [`power`] — Table I power models and energy accounting,
//! * [`qoe`] — Eqs. 2–5 QoE model and its fitting pipeline,
//! * [`cluster`] — Algorithm 1 Ptile construction,
//! * [`predict`] — viewport (ridge regression) and bandwidth (harmonic
//!   mean) prediction,
//! * [`sim`] — buffer dynamics, download loop and decoder pipeline,
//! * [`abr`] — the MPC+DP controller and the Ctile/Ftile/Nontile/Ptile
//!   baselines,
//! * [`core`] — end-to-end experiments reproducing the paper's figures.

pub use ee360_abr as abr;
pub use ee360_cluster as cluster;
pub use ee360_core as core;
pub use ee360_geom as geom;
pub use ee360_numeric as numeric;
pub use ee360_obs as obs;
pub use ee360_power as power;
pub use ee360_predict as predict;
pub use ee360_qoe as qoe;
pub use ee360_sim as sim;
pub use ee360_trace as trace;
pub use ee360_video as video;
