#!/usr/bin/env bash
# The full CI gate, hermetic by construction: every cargo invocation runs
# --offline, so a build that reaches for the network fails here the same
# way it would fail in a sealed environment. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> ee360-lint (analyzer gate: lexical rules + call-graph reachability)"
# Blocking: exits non-zero on any deny-severity violation, including the
# interprocedural rules (panic-reachability, hot-path-alloc,
# determinism-taint) that walk the workspace call graph from the fleet /
# solver / session entry points. The JSON report (per-rule counts, every
# violation and suppression) and the call graph land next to the
# experiment outputs; the baseline file pins the accepted-findings set —
# currently empty, i.e. the workspace is violation-free — so any new
# finding fails CI rather than blending into an existing pile.
mkdir -p results
cargo run --release --offline -p ee360-lint -- --root . \
  --json results/lint_report.json \
  --callgraph results/callgraph.json \
  --baseline results/lint_baseline.json
for rule in panic-reachability hot-path-alloc determinism-taint; do
  grep -q "\"${rule}\"" results/lint_report.json \
    || { echo "lint report missing rule: ${rule}" >&2; exit 1; }
done
for key in schema fns calls unresolved_calls; do
  grep -q "\"${key}\"" results/callgraph.json \
    || { echo "callgraph missing key: ${key}" >&2; exit 1; }
done

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> fault-injection smoke (seeded chaos run per phone profile)"
# One seeded chaos scenario per phone: a 10 s mid-stream blackout on the
# paper's LTE trace. The example exits non-zero unless the session
# finishes without panicking, records the degradation in the resilience
# counters, keeps the rebuffer ratio bounded, and replays byte-identically.
for phone in Nexus5X Pixel3 GalaxyS20; do
  echo "---- chaos_run ${phone}"
  cargo run --release --offline --example chaos_run -- "${phone}"
done

echo "==> observability smoke (instrumented chaos run, offline + deterministic)"
# The same seeded scenario with a live Detail-level recorder. The example
# exits non-zero unless the registry reconciles *exactly* with the
# end-of-run resilience counters and session aggregates, two same-seed
# traces are byte-identical, and results/obs_report.json re-parses with
# every required key (schema/level/events/spans/metrics) present.
cargo run --release --offline --example chaos_run -- Pixel3 --obs
for key in schema level events_recorded events_dropped spans metrics; do
  grep -q "\"${key}\"" results/obs_report.json \
    || { echo "obs report missing key: ${key}" >&2; exit 1; }
done

echo "==> robust-control smoke (chance-constrained MPC, wandering gaze + storm)"
# The uncertainty-aware controller over the wandering-gaze fixture with
# the full fault storm. The example exits non-zero unless the robust
# widening actually engages and the run replays byte-identically; the
# greps pin the robust.* uncertainty counters in the exported report.
cargo run --release --offline --example chaos_run -- Pixel3 --scheme robust-mpc --storm --obs
for key in robust.margin_applied robust.widened_plans robust.coverage_miss_saved robust.quantile_width_deg; do
  grep -q "\"${key}\"" results/obs_report.json \
    || { echo "obs report missing robust key: ${key}" >&2; exit 1; }
done

echo "==> fleet equivalence (blocking: event engine vs loop engine, full paper matrix)"
# The event-driven fleet engine must be bit-identical to the loop
# engine. The quick tier already ran in the workspace test pass above;
# this stage adds the #[ignore]d 48-user x 8-video paper matrix (benign
# + chaos) in release, which is the PR's acceptance pin.
cargo test --release -q --offline --test fleet_equivalence -- --include-ignored

echo "==> fleet smoke (10k-session event-driven fleet, offline + deterministic)"
# Runs the sim::fleet scale engine over a seeded chaos plan and exits
# non-zero unless every slot completes, two same-seed runs and every
# worker count serialize byte-identically, and the folded fleet.*
# registry keys reconcile with the report. Writes
# results/fleet_report.json; the key grep below guards the artifact
# schema the same way the obs smoke does.
cargo run --release --offline --example fleet_smoke
for key in schema sessions fleet_report obs_report mean_qoe total_energy_mj; do
  grep -q "\"${key}\"" results/fleet_report.json \
    || { echo "fleet report missing key: ${key}" >&2; exit 1; }
done

echo "==> fleet telemetry smoke (windowed series + sampling + SLOs, blocking)"
# The full ISSUE-10 telemetry pipeline over the same 10k-session fleet:
# 5 s logical-time windows, 1% deterministic trace sampling, worst-K
# exemplars, and the default SLO report card. The example exits non-zero
# unless results/fleet_timeseries.json is byte-identical at 1/4/16
# threads and the final window row reconciles bit-exactly with the
# report; the greps pin the artifact schema, the per-window rows, the
# tail exemplars, and the per-SLO verdicts.
cargo run --release --offline --example fleet_smoke -- \
  --timeseries --sample-rate 0.01 --slo
for key in ee360.timeseries.v1 window_sec t_start_sec stall_hist \
           worst_stall worst_qoe sampled_sessions slo max_burn verdict; do
  grep -q "\"${key}\"" results/fleet_timeseries.json \
    || { echo "fleet timeseries missing key: ${key}" >&2; exit 1; }
done

echo "==> perf smoke (tracked baseline, quick mode; regression-gated)"
# Emits BENCH_perf.json (repo root) and the results/bench_perf.json
# artifact copy — both written by the binary itself — with the solver
# plans/sec, session and quick-sweep wall times, the per-thread-count
# scaling rows, their canary-normalised speedups vs the pinned seed
# figures, and the obs_overhead section (fleet telemetry on vs off).
# Machine weather stays non-blocking (a loaded CI box must not fail the
# build), but two things are code regressions the binary signals with
# exit code 2 — blocking: a canary-normalised solver.plans_per_sec drop
# of more than 20% vs the checked-in baseline, and fleet telemetry
# overhead at or above the 10% budget.
perf_status=0
EE360_BENCH_QUICK=1 EE360_BENCH_GATE=1 \
  cargo run --release --offline -p ee360-bench --bin perf_baseline || perf_status=$?
if [ "${perf_status}" -eq 2 ]; then
  echo "perf smoke: gated regression (solver throughput or telemetry overhead budget)" >&2
  exit 1
elif [ "${perf_status}" -ne 0 ]; then
  echo "WARNING: perf smoke failed (status ${perf_status}, non-blocking)" >&2
else
  for key in available_parallelism threads_requested threads_used scaling obs_overhead; do
    grep -q "\"${key}\"" BENCH_perf.json \
      || { echo "BENCH_perf.json missing key: ${key}" >&2; exit 1; }
  done
  echo "perf smoke: wrote BENCH_perf.json and results/bench_perf.json"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
