#!/usr/bin/env bash
# The full CI gate, hermetic by construction: every cargo invocation runs
# --offline, so a build that reaches for the network fails here the same
# way it would fail in a sealed environment. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
