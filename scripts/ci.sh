#!/usr/bin/env bash
# The full CI gate, hermetic by construction: every cargo invocation runs
# --offline, so a build that reaches for the network fails here the same
# way it would fail in a sealed environment. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> ee360-lint (determinism / hermeticity / panic-path gate)"
# Blocking: exits non-zero on any deny-severity violation. The JSON
# report (per-rule counts, every violation and suppression) lands next
# to the experiment outputs for inspection.
mkdir -p results
cargo run --release --offline -p ee360-lint -- --root . --json results/lint_report.json

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> fault-injection smoke (seeded chaos run per phone profile)"
# One seeded chaos scenario per phone: a 10 s mid-stream blackout on the
# paper's LTE trace. The example exits non-zero unless the session
# finishes without panicking, records the degradation in the resilience
# counters, keeps the rebuffer ratio bounded, and replays byte-identically.
for phone in Nexus5X Pixel3 GalaxyS20; do
  echo "---- chaos_run ${phone}"
  cargo run --release --offline --example chaos_run -- "${phone}"
done

echo "==> perf smoke (non-blocking: tracked baseline, quick mode)"
# Emits BENCH_perf.json (repo root) and results/bench_perf.json with the
# solver plans/sec, session and quick-sweep wall times, and their
# canary-normalised speedups vs the pinned seed figures. Perf drift is a
# tracked signal, not a gate: a loaded CI box must not fail the build,
# so a non-zero exit here only warns.
if EE360_BENCH_QUICK=1 cargo run --release --offline -p ee360-bench --bin perf_baseline; then
  echo "perf smoke: wrote BENCH_perf.json and results/bench_perf.json"
else
  echo "WARNING: perf smoke failed (non-blocking)" >&2
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
